"""Unit tests for the query planner."""

import pytest

from repro.core.errors import PlanningError
from repro.query.ast import SelectQuery, TriplePattern, Var
from repro.query.parser import parse
from repro.query.planner import AccessMethod, plan


def methods(text):
    return [step.method for step in plan(parse(text)).steps]


class TestClassification:
    def test_exact_lookup(self):
        assert methods("SELECT ?o WHERE { (?o,name,'bmw') }") == [
            AccessMethod.EXACT
        ]

    def test_string_similarity_pushdown(self):
        plan_ = plan(
            parse("SELECT ?n WHERE { (?o,name,?n) FILTER (dist(?n,'BMW') < 2) }")
        )
        step = plan_.steps[0]
        assert step.method is AccessMethod.STRING_SIMILARITY
        assert step.similarity.target == "BMW"
        assert step.similarity.edit_limit == 1  # strict '<'
        assert plan_.residual_filters == ()

    def test_le_edit_limit(self):
        plan_ = plan(
            parse("SELECT ?n WHERE { (?o,name,?n) FILTER (dist(?n,'BMW') <= 2) }")
        )
        assert plan_.steps[0].similarity.edit_limit == 2

    def test_numeric_similarity_pushdown(self):
        plan_ = plan(
            parse("SELECT ?p WHERE { (?o,price,?p) FILTER (dist(?p,100) < 5) }")
        )
        assert plan_.steps[0].method is AccessMethod.NUMERIC_SIMILARITY

    def test_schema_similarity(self):
        plan_ = plan(
            parse(
                "SELECT ?a WHERE { (?o,?a,?v) FILTER (dist(?a,'dlrid') < 3) }"
            )
        )
        assert plan_.steps[0].method is AccessMethod.SCHEMA_SIMILARITY

    def test_range_pushdown(self):
        plan_ = plan(
            parse(
                "SELECT ?p WHERE { (?o,price,?p) "
                "FILTER (?p < 100) FILTER (?p >= 10) }"
            )
        )
        step = plan_.steps[0]
        assert step.method is AccessMethod.RANGE
        assert step.range.upper == 100
        assert step.range.lower == 10
        assert plan_.residual_filters == ()

    def test_reversed_comparison_normalized(self):
        plan_ = plan(parse("SELECT ?p WHERE { (?o,price,?p) FILTER (100 > ?p) }"))
        step = plan_.steps[0]
        assert step.method is AccessMethod.RANGE
        assert step.range.upper == 100

    def test_plain_scan(self):
        assert methods("SELECT ?n WHERE { (?o,name,?n) }") == [AccessMethod.SCAN]


class TestOrdering:
    def test_similarity_before_join_patterns(self):
        plan_ = plan(
            parse(
                "SELECT ?n,?h WHERE { (?o,hp,?h) (?o,name,?n) "
                "FILTER (dist(?n,'BMW') < 2) }"
            )
        )
        assert plan_.steps[0].method is AccessMethod.STRING_SIMILARITY
        assert plan_.steps[1].method is AccessMethod.OID_JOIN

    def test_scan_rewritten_to_oid_join_when_subject_bound(self):
        plan_ = plan(
            parse("SELECT ?o,?p WHERE { (?o,name,'bmw') (?o,price,?p) }")
        )
        assert [s.method for s in plan_.steps] == [
            AccessMethod.EXACT,
            AccessMethod.OID_JOIN,
        ]

    def test_range_rewrite_reinstates_filters(self):
        plan_ = plan(
            parse(
                "SELECT ?o,?p WHERE { (?o,name,'bmw') (?o,price,?p) "
                "FILTER (?p < 100) }"
            )
        )
        assert [s.method for s in plan_.steps] == [
            AccessMethod.EXACT,
            AccessMethod.OID_JOIN,
        ]
        assert len(plan_.residual_filters) == 1

    def test_simjoin_probe_after_partner(self):
        plan_ = plan(
            parse(
                "SELECT ?a,?b WHERE { (?x,name,?a) (?y,title,?b) "
                "FILTER (dist(?a,'bmw') < 2) FILTER (dist(?b,?a) < 2) }"
            )
        )
        assert plan_.steps[0].method is AccessMethod.STRING_SIMILARITY
        assert plan_.steps[1].method is AccessMethod.SIMJOIN_PROBE
        assert plan_.steps[1].similarity.partner_var == "a"


class TestTopNPromotion:
    def test_promoted_for_order_limit_scan(self):
        plan_ = plan(
            parse("SELECT ?h WHERE { (?o,hp,?h) } ORDER BY ?h DESC LIMIT 5")
        )
        assert plan_.steps[0].method is AccessMethod.TOP_N

    def test_nn_target_carried(self):
        plan_ = plan(
            parse(
                "SELECT ?n WHERE { (?o,name,?n) } ORDER BY ?n NN 'bmw' LIMIT 3"
            )
        )
        step = plan_.steps[0]
        assert step.method is AccessMethod.TOP_N
        assert step.similarity.target == "bmw"

    def test_not_promoted_without_limit(self):
        plan_ = plan(parse("SELECT ?h WHERE { (?o,hp,?h) } ORDER BY ?h DESC"))
        assert plan_.steps[0].method is AccessMethod.SCAN

    def test_not_promoted_when_filter_already_selective(self):
        plan_ = plan(
            parse(
                "SELECT ?h WHERE { (?o,hp,?h) FILTER (?h > 100) } "
                "ORDER BY ?h DESC LIMIT 5"
            )
        )
        assert plan_.steps[0].method is AccessMethod.RANGE


class TestErrors:
    def test_unplannable_variable_predicate(self):
        query = SelectQuery(
            select=(Var("v"),),
            patterns=(TriplePattern(Var("o"), Var("a"), Var("v")),),
        )
        with pytest.raises(PlanningError):
            plan(query)

    def test_variable_predicate_reachable_through_subject(self):
        plan_ = plan(
            parse("SELECT ?a,?v WHERE { (?o,name,'bmw') (?o,?a,?v) }")
        )
        assert [s.method for s in plan_.steps] == [
            AccessMethod.EXACT,
            AccessMethod.OID_JOIN,
        ]

    def test_explain_mentions_each_step(self):
        plan_ = plan(
            parse("SELECT ?n WHERE { (?o,name,?n) FILTER (dist(?n,'x') < 2) }")
        )
        text = plan_.explain()
        assert "string_similarity" in text
        assert "target='x'" in text
