"""Unit tests for the VQL parser."""

import pytest

from repro.core.errors import VQLSyntaxError
from repro.query.ast import (
    CompareOp,
    Const,
    DistCall,
    SortDirection,
    Var,
)
from repro.query.parser import parse


class TestBasicQueries:
    def test_minimal_query(self):
        query = parse("SELECT ?v WHERE { (?o,name,?v) }")
        assert query.select == (Var("v"),)
        assert len(query.patterns) == 1
        pattern = query.patterns[0]
        assert pattern.subject == Var("o")
        assert pattern.predicate == Const("name")
        assert pattern.object == Var("v")

    def test_multiple_select_vars(self):
        query = parse("SELECT ?a,?b WHERE { (?o,x,?a) (?o,y,?b) }")
        assert query.select == (Var("a"), Var("b"))

    def test_literal_terms(self):
        query = parse("SELECT ?o WHERE { (?o,price,42) (?o,name,'bmw') }")
        assert query.patterns[0].object == Const(42)
        assert query.patterns[1].object == Const("bmw")

    def test_float_literal(self):
        query = parse("SELECT ?o WHERE { (?o,price,3.5) }")
        assert query.patterns[0].object == Const(3.5)

    def test_variable_predicate(self):
        query = parse("SELECT ?o WHERE { (?o,?a,?v) FILTER (dist(?a,'x') < 2) }")
        assert query.patterns[0].predicate == Var("a")


class TestFilters:
    def test_comparison_filter(self):
        query = parse("SELECT ?p WHERE { (?o,price,?p) FILTER (?p < 50000) }")
        comparison = query.filters[0]
        assert comparison.left == Var("p")
        assert comparison.op is CompareOp.LT
        assert comparison.right == Const(50000)

    def test_dist_filter(self):
        query = parse(
            "SELECT ?n WHERE { (?o,name,?n) FILTER (dist(?n,'BMW') < 2) }"
        )
        comparison = query.filters[0]
        assert isinstance(comparison.left, DistCall)
        assert comparison.left.left == Var("n")
        assert comparison.left.right == Const("BMW")
        assert comparison.is_distance_predicate()

    def test_dist_between_variables(self):
        query = parse(
            "SELECT ?a WHERE { (?o,x,?a) (?p,y,?b) FILTER (dist(?a,?b) <= 1) }"
        )
        dist = query.filters[0].left
        assert isinstance(dist, DistCall)
        assert dist.variables() == {"a", "b"}

    def test_multiple_filters_conjunctive(self):
        query = parse(
            "SELECT ?p WHERE { (?o,price,?p) FILTER (?p < 9) FILTER (?p > 1) }"
        )
        assert len(query.filters) == 2

    def test_all_operators(self):
        for op_text, op in [
            ("<", CompareOp.LT), ("<=", CompareOp.LE), (">", CompareOp.GT),
            (">=", CompareOp.GE), ("=", CompareOp.EQ), ("!=", CompareOp.NE),
        ]:
            query = parse(
                f"SELECT ?p WHERE {{ (?o,price,?p) FILTER (?p {op_text} 5) }}"
            )
            assert query.filters[0].op is op


class TestModifiers:
    def test_order_by_desc_limit(self):
        query = parse(
            "SELECT ?h WHERE { (?o,hp,?h) } ORDER BY ?h DESC LIMIT 5"
        )
        assert query.order_by.variable == Var("h")
        assert query.order_by.direction is SortDirection.DESC
        assert query.limit == 5

    def test_order_by_default_asc(self):
        query = parse("SELECT ?h WHERE { (?o,hp,?h) } ORDER BY ?h")
        assert query.order_by.direction is SortDirection.ASC

    def test_order_by_nn_string(self):
        query = parse(
            "SELECT ?a WHERE { (?o,name,?a) } ORDER BY ?a NN 'dlrid'"
        )
        assert query.order_by.is_nearest_neighbour
        assert query.order_by.nn_target == Const("dlrid")

    def test_order_by_nn_number(self):
        query = parse("SELECT ?h WHERE { (?o,hp,?h) } ORDER BY ?h NN 200")
        assert query.order_by.nn_target == Const(200)

    def test_offset(self):
        query = parse("SELECT ?h WHERE { (?o,hp,?h) } LIMIT 5 OFFSET 10")
        assert query.offset == 10

    def test_nn_requires_literal(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?a WHERE { (?o,x,?a) } ORDER BY ?a NN ?b")

    def test_limit_requires_integer(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?a WHERE { (?o,x,?a) } LIMIT 2.5")


class TestErrors:
    def test_missing_select(self):
        with pytest.raises(VQLSyntaxError):
            parse("WHERE { (?o,x,?a) }")

    def test_missing_brace(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?a WHERE (?o,x,?a)")

    def test_unclosed_pattern(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?a WHERE { (?o,x,?a }")

    def test_trailing_garbage(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?a WHERE { (?o,x,?a) } nonsense")

    def test_empty_where(self):
        from repro.core.errors import QueryError

        with pytest.raises(QueryError):
            parse("SELECT ?a WHERE { }")


class TestPaperExamples:
    def test_example_one(self):
        query = parse(
            """
            SELECT ?n,?h,?p
            WHERE { (?o,name,?n) (?o,hp,?h) (?o,price,?p)
            FILTER (?p < 50000) }
            ORDER BY ?h DESC LIMIT 5
            """
        )
        assert len(query.patterns) == 3
        assert query.limit == 5

    def test_example_two(self):
        query = parse(
            """
            SELECT ?n,?h,?p,?dn,?a
            WHERE { (?x,dealer,?d) (?y,dlrid,?d)
            (?x,name,?n) (?x,hp,?h) (?x,price,?p)
            (?y,addr,?a) (?y,name,?dn)
            FILTER (?p < 50000)
            FILTER (dist(?n,'BMW') < 2)}
            ORDER BY ?h DESC LIMIT 5
            """
        )
        assert len(query.patterns) == 7
        assert len(query.filters) == 2

    def test_example_three(self):
        query = parse(
            """
            SELECT ?n,?p,?dn,?ad
            WHERE { (?d,?a,?id) (?d,name,?dn) (?d,addr,?ad)
            (?o,name,?n) (?o,price,?p)
            (?o,dealer,?cid)
            FILTER (dist(?id,?cid) < 2)
            FILTER (dist(?a,'dlrid') < 3)}
            ORDER BY ?a NN 'dlrid'
            """
        )
        assert query.order_by.is_nearest_neighbour
        assert query.patterns[0].predicate == Var("a")
