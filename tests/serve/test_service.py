"""Endpoint behaviour of :class:`repro.serve.app.QueryService`.

Covers the JSON contract (matches + cost on every query response,
adaptive decisions, error statuses) and the degraded-fault mapping:
partial answers become HTTP 206 with the ``Completeness`` record's
key-space mass in the payload.
"""

from __future__ import annotations

from serve_utils import ATTRIBUTE, post, run

from repro import FaultPlan, StoreConfig
from repro.overlay.churn import ChurnController
from repro.serve.app import Request


class TestIntrospection:
    def test_healthz(self, service_factory):
        service = service_factory()
        response = run(service.handle(Request("GET", "/healthz")))
        assert response.status == 200
        assert response.payload["status"] == "ok"
        assert response.payload["peers"] == 32
        assert response.payload["partitions"] >= 1
        assert response.payload["fault_mode"] == "strict"

    def test_stats_accumulate(self, service_factory):
        service = service_factory()
        run(service.handle(post(
            "/query/similar",
            {"search": "adaptor", "attribute": ATTRIBUTE, "d": 1},
        )))
        response = run(service.handle(Request("GET", "/stats")))
        assert response.status == 200
        engine_stats = response.payload["engine"]
        assert engine_stats["queries"] >= 1
        assert engine_stats["messages"] > 0
        assert response.payload["admission"]["admitted"] == 1
        assert response.payload["served_by_endpoint"]["/query/similar"] == 1

    def test_healthz_and_stats_bypass_admission(self, service_factory):
        from repro.serve.app import ServiceConfig

        service = service_factory(config=ServiceConfig(max_inflight=1))
        # Saturate nothing: introspection must not consume capacity.
        for __ in range(5):
            response = run(service.handle(Request("GET", "/healthz")))
            assert response.status == 200
        assert service.admission.admitted_total == 0


class TestQueryEndpoints:
    def test_exact_match(self, service_factory):
        service = service_factory()
        response = run(service.handle(post(
            "/query/exact", {"attribute": ATTRIBUTE, "value": "overlay"},
        )))
        assert response.status == 200
        matches = response.payload["matches"]
        assert [m["matched"] for m in matches] == ["overlay"]
        assert response.payload["cost"]["messages"] > 0

    def test_similar_returns_known_neighbours(self, service_factory):
        service = service_factory()
        response = run(service.handle(post(
            "/query/similar",
            {"search": "adaptor", "attribute": ATTRIBUTE, "d": 2},
        )))
        assert response.status == 200
        matched = sorted(m["matched"] for m in response.payload["matches"])
        assert "adapter" in matched
        cost = response.payload["cost"]
        assert cost["messages"] > 0 and cost["payload_bytes"] > 0
        assert sum(cost["by_phase"].values()) == cost["messages"]

    def test_similar_fixed_strategy_tallied(self, service_factory):
        service = service_factory()
        response = run(service.handle(post(
            "/query/similar",
            {"search": "adaptor", "attribute": ATTRIBUTE, "d": 1,
             "strategy": "qgrams"},
        )))
        assert response.status == 200
        assert service.strategy_tally["qgrams"] == 1

    def test_adaptive_records_decisions(self, service_factory):
        service = service_factory(strategy="adaptive")
        response = run(service.handle(post(
            "/query/similar",
            {"search": "adaptor", "attribute": ATTRIBUTE, "d": 1},
        )))
        assert response.status == 200
        decisions = response.payload["decisions"]
        assert decisions, "adaptive mode must record a strategy decision"
        for decision in decisions:
            assert decision["chosen"] in ("strings", "qgrams", "qsamples")
            assert decision["predicted_messages"] > 0
            assert decision["actual_messages"] > 0

    def test_topn_matches_and_rounds(self, service_factory):
        service = service_factory()
        response = run(service.handle(post(
            "/query/topn",
            {"attribute": ATTRIBUTE, "search": "adapte", "n": 3},
        )))
        assert response.status == 200
        assert len(response.payload["matches"]) == 3
        assert response.payload["rounds"] >= 1
        distances = [m["distance"] for m in response.payload["matches"]]
        assert distances == sorted(distances)

    def test_vql_roundtrip(self, service_factory):
        service = service_factory()
        response = run(service.handle(post(
            "/query/vql",
            {"text": "SELECT ?w WHERE { (?o,word:text,?w) "
                     "FILTER (dist(?w,'adaptor') <= 2) }"},
        )))
        assert response.status == 200
        values = sorted(row["w"] for row in response.payload["rows"])
        assert "adapter" in values


class TestErrorMapping:
    def test_unknown_route_404(self, service_factory):
        service = service_factory()
        assert run(service.handle(Request("GET", "/nope"))).status == 404

    def test_wrong_method_405(self, service_factory):
        service = service_factory()
        assert run(service.handle(Request("GET", "/query/similar"))).status == 405

    def test_bad_json_400(self, service_factory):
        service = service_factory()
        response = run(service.handle(
            Request("POST", "/query/similar", body=b"{nope")
        ))
        assert response.status == 400
        assert "JSON" in response.payload["error"]

    def test_missing_field_400(self, service_factory):
        service = service_factory()
        response = run(service.handle(post(
            "/query/similar", {"attribute": ATTRIBUTE, "d": 1},
        )))
        assert response.status == 400
        assert "'search'" in response.payload["error"]

    def test_negative_d_400(self, service_factory):
        service = service_factory()
        response = run(service.handle(post(
            "/query/similar",
            {"search": "x", "attribute": ATTRIBUTE, "d": -1},
        )))
        assert response.status == 400

    def test_unknown_strategy_400(self, service_factory):
        service = service_factory()
        response = run(service.handle(post(
            "/query/similar",
            {"search": "x", "attribute": ATTRIBUTE, "d": 1,
             "strategy": "warp-drive"},
        )))
        assert response.status == 400

    def test_vql_syntax_error_422(self, service_factory):
        service = service_factory()
        response = run(service.handle(post(
            "/query/vql", {"text": "SELEKT nothing"},
        )))
        assert response.status == 422
        assert "error" in response.payload

    def test_oversized_body_413(self, service_factory):
        service = service_factory()
        body = b'{"pad": "' + b"x" * (1 << 21) + b'"}'
        response = run(service.handle(
            Request("POST", "/query/similar", body=body)
        ))
        assert response.status == 413


class TestDegradedResponses:
    """Dark partitions in degraded mode -> 206 + Completeness mass."""

    def _darkened_service(self, service_factory):
        service = service_factory(
            n_peers=48,
            seed=21,
            store_config=StoreConfig(seed=21, replication=3),
        )
        engine = service.engine
        engine.install_faults(FaultPlan.lossy(0.05, seed=4), mode="degraded")
        churn = ChurnController(engine.network, seed=1)
        report = churn.fail_fraction(0.5, protect_partitions=False)
        assert report.dark_partitions, "test needs at least one dark partition"
        return service

    def test_similar_partial_206_with_mass(self, service_factory):
        service = self._darkened_service(service_factory)
        response = run(service.handle(post(
            "/query/similar",
            {"search": "resilent", "attribute": ATTRIBUTE, "d": 2},
        )))
        assert response.status == 206
        assert response.payload["partial"] is True
        completeness = response.payload["completeness"]
        assert 0.0 <= completeness["fraction"] < 1.0
        assert completeness["dark_partitions"]

    def test_healthy_network_has_no_completeness_block(self, service_factory):
        service = service_factory()
        response = run(service.handle(post(
            "/query/similar",
            {"search": "resilent", "attribute": ATTRIBUTE, "d": 2},
        )))
        assert response.status == 200
        assert "completeness" not in response.payload

    def test_stream_carries_completeness(self, service_factory):
        import json as jsonlib

        service = self._darkened_service(service_factory)
        response = run(self._consume_stream(service))
        lines = [jsonlib.loads(chunk) for chunk in response]
        summary = lines[-1]
        assert summary["done"] is True
        assert summary["partial"] is True
        assert 0.0 <= summary["completeness"]["fraction"] < 1.0

    @staticmethod
    async def _consume_stream(service):
        response = await service.handle(post(
            "/query/topn/stream",
            {"attribute": ATTRIBUTE, "search": "resilent", "n": 3,
             "max_distance": 2},
        ))
        assert response.status == 200
        return [chunk async for chunk in response.stream]


class TestLifecycle:
    def test_close_is_idempotent_and_closes_engine(self, service_factory):
        service = service_factory()
        fanout_engine = service.engine
        service.close()
        service.close()
        # The engine's executor is gone: a fresh handle() would need it,
        # but the engine object itself stays readable.
        assert fanout_engine.n_peers == 32

    def test_context_manager_closes(self, service_factory):
        with service_factory() as service:
            response = run(service.handle(Request("GET", "/healthz")))
            assert response.status == 200
        assert service._closed
