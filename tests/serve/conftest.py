"""Shared fixtures for the service-layer tests.

Everything is built on a small, fully deterministic corpus of words with
known near-neighbours (``serve_utils.WORDS``) so similarity answers can
be asserted exactly.  The ``service_factory`` fixture hands out services
and closes every engine it built at teardown, so leaked fan-out threads
or executors fail the suite loudly.
"""

from __future__ import annotations

import pytest
from serve_utils import ATTRIBUTE, make_triples

from repro import QueryEngine, StoreConfig
from repro.serve.app import QueryService, ServiceConfig


@pytest.fixture
def service_factory():
    """Build services over the standard corpus; closes them at teardown."""
    built: list[QueryService] = []

    def factory(
        n_peers: int = 32,
        seed: int = 1,
        strategy: str | None = None,
        analyze: bool = True,
        config: ServiceConfig | None = None,
        store_config: StoreConfig | None = None,
    ) -> QueryService:
        engine = QueryEngine.build(
            n_peers=n_peers,
            triples=make_triples(),
            config=store_config or StoreConfig(seed=seed),
            strategy=strategy,
        )
        if analyze:
            engine.analyze([ATTRIBUTE])
        service = QueryService(engine, config)
        built.append(service)
        return service

    yield factory
    for service in built:
        service.close()
