"""Helpers shared by the service-layer tests (imported by name)."""

from __future__ import annotations

import asyncio
import json

from repro.serve.app import Request
from repro.storage.triple import Triple

ATTRIBUTE = "word:text"

WORDS = [
    "adaptive", "adapted", "adopted", "adapter", "chapter",
    "overlay", "overlap", "overload", "storage", "strategy",
    "stratagem", "partition", "partial", "replica", "replicate",
    "resilient", "resilience", "redundant", "redundancy", "failure",
]


def make_triples() -> list[Triple]:
    return [
        Triple(f"w:{i:04d}", ATTRIBUTE, word)
        for i, word in enumerate(WORDS)
    ]


def run(coro):
    """Drive one coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)


def post(path: str, payload: dict) -> Request:
    return Request("POST", path, body=json.dumps(payload).encode())
