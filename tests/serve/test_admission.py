"""Admission control: capacity caps, predicted overload, Retry-After.

The service-level tests use the streaming endpoint to hold capacity
deterministically: an admitted stream keeps its ticket until the
response body is consumed, so "server busy" needs no thread races.
"""

from __future__ import annotations

import json

import pytest
from serve_utils import ATTRIBUTE, post, run

from repro.core.errors import ConfigError
from repro.serve.admission import MAX_RETRY_AFTER, AdmissionController
from repro.serve.app import ServiceConfig


class TestControllerUnit:
    def test_admits_until_capacity(self):
        controller = AdmissionController(max_inflight=2)
        first = controller.admit(10.0)
        second = controller.admit(10.0)
        assert first.admitted and second.admitted
        third = controller.admit(10.0)
        assert not third.admitted
        assert third.reason == "capacity"
        assert third.retry_after >= 1

    def test_finish_releases_capacity(self):
        controller = AdmissionController(max_inflight=1)
        decision = controller.admit(5.0)
        assert not controller.admit(5.0).admitted
        decision.ticket.finish(0.01)
        assert controller.admit(5.0).admitted
        assert controller.completed_total == 1

    def test_finish_is_idempotent(self):
        controller = AdmissionController(max_inflight=1)
        decision = controller.admit(5.0)
        decision.ticket.finish(0.01)
        decision.ticket.finish(0.01)
        assert controller.inflight == 0
        assert controller.completed_total == 1

    def test_cost_budget_rejects_busy_server(self):
        controller = AdmissionController(max_inflight=8, cost_budget=100.0)
        assert controller.admit(80.0).admitted
        decision = controller.admit(30.0)
        assert not decision.admitted
        assert decision.reason == "predicted-overload"

    def test_expensive_query_admitted_when_idle(self):
        # The budget sheds load; it never starves a query class.
        controller = AdmissionController(max_inflight=8, cost_budget=100.0)
        assert controller.admit(5_000.0).admitted

    def test_retry_after_is_bounded(self):
        controller = AdmissionController(max_inflight=1, cost_budget=0.0)
        ticket = controller.admit(1e9).ticket
        assert 1 <= controller.retry_after() <= MAX_RETRY_AFTER
        ticket.finish(0.5)

    def test_retry_after_tracks_observed_service_rate(self):
        controller = AdmissionController(max_inflight=4)
        # Three finished requests at ~2s each teach the EWMA.
        for __ in range(3):
            controller.admit(100.0).ticket.finish(2.0)
        controller.admit(100.0)
        controller.admit(100.0)
        # Two in flight at ~2s each -> drain estimate of several seconds.
        assert controller.retry_after() >= 2

    def test_snapshot_counters(self):
        controller = AdmissionController(max_inflight=1)
        controller.admit(3.0).ticket.finish(0.01)
        held = controller.admit(3.0).ticket
        controller.admit(3.0)
        snapshot = controller.snapshot()
        assert snapshot["admitted"] == 2
        assert snapshot["completed"] == 1
        assert snapshot["inflight"] == 1
        assert snapshot["rejected_capacity"] == 1
        held.finish(0.01)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ConfigError):
            AdmissionController(cost_budget=-1.0)


class TestServiceAdmission:
    def test_reject_at_capacity_with_retry_after(self, service_factory):
        service = service_factory(config=ServiceConfig(max_inflight=1))

        async def scenario():
            stream_response = await service.handle(post(
                "/query/topn/stream",
                {"attribute": ATTRIBUTE, "search": "adapte", "n": 3},
            ))
            assert stream_response.status == 200  # holds the only slot
            rejected = await service.handle(post(
                "/query/similar",
                {"search": "adaptor", "attribute": ATTRIBUTE, "d": 1},
            ))
            assert rejected.status == 429
            assert rejected.payload["reason"] == "capacity"
            retry_after = int(rejected.headers["Retry-After"])
            assert retry_after >= 1
            assert rejected.payload["retry_after"] == retry_after
            # Drain the stream: the slot frees, a retry is admitted —
            # waiting the advertised interval is always enough because
            # the slot-holder is already executing.
            async for __ in stream_response.stream:
                pass
            retried = await service.handle(post(
                "/query/similar",
                {"search": "adaptor", "attribute": ATTRIBUTE, "d": 1},
            ))
            assert retried.status == 200
            return rejected

        run(scenario())
        assert service.admission.rejected_capacity == 1
        assert service.admission.inflight == 0

    def test_predicted_overload_rejection(self, service_factory):
        # A budget below any similarity query's predicted cost: the
        # first request (idle server) is always admitted, the second is
        # shed as predicted overload.
        service = service_factory(
            config=ServiceConfig(max_inflight=8, cost_budget=0.5)
        )

        async def scenario():
            stream_response = await service.handle(post(
                "/query/topn/stream",
                {"attribute": ATTRIBUTE, "search": "adapte", "n": 3},
            ))
            assert stream_response.status == 200
            rejected = await service.handle(post(
                "/query/similar",
                {"search": "adaptor", "attribute": ATTRIBUTE, "d": 1},
            ))
            assert rejected.status == 429
            assert rejected.payload["reason"] == "predicted-overload"
            async for __ in stream_response.stream:
                pass

        run(scenario())
        assert service.admission.rejected_overload == 1

    def test_rejected_requests_do_not_touch_the_engine(self, service_factory):
        service = service_factory(config=ServiceConfig(max_inflight=1))

        async def scenario():
            stream_response = await service.handle(post(
                "/query/topn/stream",
                {"attribute": ATTRIBUTE, "search": "adapte", "n": 3},
            ))
            queries_before = service.engine.stats.queries
            rejected = await service.handle(post(
                "/query/exact", {"attribute": ATTRIBUTE, "value": "overlay"},
            ))
            assert rejected.status == 429
            assert service.engine.stats.queries == queries_before
            async for __ in stream_response.stream:
                pass

        run(scenario())

    def test_stream_summary_counts_against_capacity(self, service_factory):
        service = service_factory(config=ServiceConfig(max_inflight=2))

        async def scenario():
            first = await service.handle(post(
                "/query/topn/stream",
                {"attribute": ATTRIBUTE, "search": "adapte", "n": 2},
            ))
            second = await service.handle(post(
                "/query/topn/stream",
                {"attribute": ATTRIBUTE, "search": "overla", "n": 2},
            ))
            assert service.admission.inflight == 2
            third = await service.handle(post(
                "/query/exact", {"attribute": ATTRIBUTE, "value": "overlay"},
            ))
            assert third.status == 429
            for response in (first, second):
                lines = [json.loads(c) async for c in response.stream]
                assert lines[-1]["done"] is True
            return None

        run(scenario())
        assert service.admission.inflight == 0
