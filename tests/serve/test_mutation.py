"""Mutation endpoints: writes between requests never leak stale answers.

The service shares one single-worker executor between queries and the
engine's explicit write path, so every response either predates a write
entirely or reflects all of it.  These tests mutate the store between
requests and assert (a) the next query's answer includes/excludes the
written data — no memo serves a pre-write answer — and (b) ``/stats``
reports the advanced store version token and the memo maintenance
counters.
"""

from __future__ import annotations

from serve_utils import ATTRIBUTE, run, post

from repro.serve.app import Request


def _matched(response) -> set[str]:
    return {m["matched"] for m in response.payload["matches"]}


def _similar(service, search: str, d: int = 1):
    return run(
        service.handle(
            post(
                "/query/similar",
                {"search": search, "attribute": ATTRIBUTE, "d": d},
            )
        )
    )


class TestMutateEndpoints:
    def test_insert_visible_to_next_query(self, service_factory):
        service = service_factory()
        first = _similar(service, "adaptive")
        assert first.status == 200
        assert "adaptivo" not in _matched(first)

        inserted = run(
            service.handle(
                post(
                    "/mutate/insert",
                    {
                        "triples": [
                            {
                                "oid": "w:new",
                                "attribute": ATTRIBUTE,
                                "value": "adaptivo",
                            }
                        ]
                    },
                )
            )
        )
        assert inserted.status == 200
        assert inserted.payload["applied"] > 0
        assert inserted.payload["requested"] == 1

        # The pre-write query populated the memos; a stale hit would
        # reproduce the old answer without "adaptivo".
        second = _similar(service, "adaptive")
        assert "adaptivo" in _matched(second)

    def test_delete_removes_from_next_answer(self, service_factory):
        service = service_factory()
        assert "adapted" in _matched(_similar(service, "adapter"))
        deleted = run(
            service.handle(
                post(
                    "/mutate/delete",
                    {
                        "triples": [
                            {
                                "oid": "w:0001",
                                "attribute": ATTRIBUTE,
                                "value": "adapted",
                            }
                        ]
                    },
                )
            )
        )
        assert deleted.status == 200
        assert deleted.payload["applied"] > 0
        assert "adapted" not in _matched(_similar(service, "adapter"))

    def test_stats_reflects_store_version(self, service_factory):
        service = service_factory()
        before = run(service.handle(Request("GET", "/stats")))
        token_before = before.payload["store_version"]
        assert token_before == service.engine.store_version

        mutated = run(
            service.handle(
                post(
                    "/mutate/insert",
                    {
                        "triples": [
                            {
                                "oid": "w:v",
                                "attribute": ATTRIBUTE,
                                "value": "versioned",
                            }
                        ]
                    },
                )
            )
        )
        assert mutated.payload["store_version"] > token_before

        after = run(service.handle(Request("GET", "/stats")))
        assert after.payload["store_version"] == mutated.payload["store_version"]
        assert set(after.payload["memos"]) == {"naive", "gram_scan", "fetch"}
        for counters in after.payload["memos"].values():
            assert counters.keys() == {
                "hits", "misses", "invalidations", "entries"
            }

    def test_bad_triples_rejected(self, service_factory):
        service = service_factory()
        for payload in (
            {},
            {"triples": []},
            {"triples": ["nope"]},
            {"triples": [{"oid": "", "attribute": ATTRIBUTE, "value": "x"}]},
            {"triples": [{"oid": "w:x", "attribute": ATTRIBUTE, "value": True}]},
            {"triples": [{"oid": "w:x", "value": "x"}]},
        ):
            response = run(service.handle(post("/mutate/insert", payload)))
            assert response.status == 400, payload
