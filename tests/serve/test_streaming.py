"""Streaming top-N: order and content match the serial operator exactly.

The service streams per-round batches of the iterative deepening; the
contract is that the concatenated stream reproduces
:func:`repro.query.operators.topn.top_n_string_nn`'s final ranked list
bit for bit — same oids, same matched strings, same distances, same
order, same truncation at N.  Verified in-process and over a real
socket (which also exercises the chunked HTTP framing end to end).
"""

from __future__ import annotations

import asyncio
import json

import pytest
from serve_utils import ATTRIBUTE, WORDS, post, run

from repro.serve.client import HttpClient
from repro.serve.http import ServiceServer


def _stream_matches(service, body):
    async def scenario():
        response = await service.handle(post("/query/topn/stream", body))
        assert response.status == 200
        assert response.headers["Content-Type"] == "application/x-ndjson"
        return [json.loads(chunk) async for chunk in response.stream]

    return run(scenario())


def _rank_tuple(match_dict):
    return (match_dict["oid"], match_dict["matched"], match_dict["distance"])


class TestStreamingEquivalence:
    @pytest.mark.parametrize("search,n,max_distance", [
        ("adapte", 3, 5),
        ("adapte", 10, 3),
        ("overla", 4, 2),
        ("strategem", 2, 5),
        ("zzzzzz", 5, 2),  # no matches at all
    ])
    def test_stream_equals_serial_engine(
        self, service_factory, search, n, max_distance
    ):
        service = service_factory()
        serial = service.engine.top_n_string(
            ATTRIBUTE, search, n, max_distance
        )
        lines = _stream_matches(service, {
            "attribute": ATTRIBUTE, "search": search, "n": n,
            "max_distance": max_distance,
        })
        summary = lines[-1]
        streamed = [_rank_tuple(line["match"]) for line in lines[:-1]]
        expected = [
            (m.oid, m.matched, m.distance) for m in serial.matches
        ]
        assert streamed == expected
        assert summary["done"] is True
        assert summary["count"] == len(expected)
        assert summary["rounds"] == serial.rounds
        assert summary["cost"]["messages"] > 0

    def test_stream_objects_carry_full_payload(self, service_factory):
        service = service_factory()
        lines = _stream_matches(service, {
            "attribute": ATTRIBUTE, "search": "adapte", "n": 1,
        })
        match = lines[0]["match"]
        assert match["object"][ATTRIBUTE] == match["matched"]
        assert match["matched"] in WORDS

    def test_stream_is_incremental_per_round(self, service_factory):
        """Early matches arrive before later deepening rounds run."""
        service = service_factory()

        async def scenario():
            response = await service.handle(post("/query/topn/stream", {
                "attribute": ATTRIBUTE, "search": "adapted", "n": 10,
                "max_distance": 3,
            }))
            iterator = response.stream.__aiter__()
            first = json.loads(await iterator.__anext__())
            # The exact match (distance 0) streams out of round 0; the
            # engine has not exhausted the deepening yet.
            assert first["match"]["distance"] == 0
            rest = [json.loads(chunk) async for chunk in iterator]
            assert rest[-1]["done"] is True
            return None

        run(scenario())


class TestStreamingOverHttp:
    def test_socket_roundtrip_matches_serial(self, service_factory):
        service = service_factory()
        serial = service.engine.top_n_string(ATTRIBUTE, "adapte", 3, 5)
        expected = [(m.oid, m.matched, m.distance) for m in serial.matches]

        async def scenario():
            server = ServiceServer(service, "127.0.0.1", 0)
            await server.start()
            client = HttpClient("127.0.0.1", server.port)
            try:
                reply = await client.request(
                    "POST",
                    "/query/topn/stream",
                    {"attribute": ATTRIBUTE, "search": "adapte", "n": 3},
                )
                assert reply.status == 200
                assert (
                    reply.headers.get("transfer-encoding", "").lower()
                    == "chunked"
                )
                # The connection stays usable after a streamed response.
                health = await client.request("GET", "/healthz")
                assert health.status == 200
                return reply.lines
            finally:
                await client.close()
                await server.stop()

        lines = asyncio.run(scenario())
        streamed = [
            _rank_tuple(line["match"]) for line in lines if "match" in line
        ]
        assert streamed == expected
        assert lines[-1]["done"] is True
