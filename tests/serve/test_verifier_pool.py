"""Verifier-pool bounds and kernel diagnostics in the long-lived service.

The service holds one engine — and therefore one
:class:`~repro.similarity.verify.VerifierPool` — for its whole lifetime,
so unbounded per-``(query, d)`` memo growth would be a slow leak.  These
tests pin the eviction contract (LRU beyond ``verifier_pool_limit``,
hit/evict counters, recomputation instead of wrong answers) and the
``/stats`` / per-response surfacing of kernel identity and verifier
counters.
"""

from __future__ import annotations

from serve_utils import ATTRIBUTE, WORDS, make_triples, post, run

from repro import QueryEngine, StoreConfig
from repro.serve.app import Request, QueryService


def make_service(built, **engine_options) -> QueryService:
    engine = QueryEngine.build(
        n_peers=32,
        triples=make_triples(),
        config=StoreConfig(seed=1),
        **engine_options,
    )
    service = QueryService(engine)
    built.append(service)
    return service


def similar_query(service, search: str, d: int = 1):
    return run(service.handle(post(
        "/query/similar", {"search": search, "attribute": ATTRIBUTE, "d": d},
    )))


class TestPoolBounds:
    def setup_method(self):
        self.built = []

    def teardown_method(self):
        for service in self.built:
            service.close()

    def test_eviction_and_counters_under_query_churn(self):
        service = make_service(self.built, verifier_pool_limit=3)
        pool = service.engine.verifier_pool
        for word in WORDS[:8]:
            response = similar_query(service, word)
            assert response.status == 200
        assert len(pool) <= 3
        assert pool.evictions > 0
        assert pool.misses >= 8
        # Kernel counters aggregate across evicted verifiers.
        assert pool.counters.computed > 0

    def test_evicted_query_recomputes_same_answer(self):
        service = make_service(self.built, verifier_pool_limit=1)
        first = similar_query(service, "adaptor")
        # Push the 'adaptor' verifier out of the pool, then re-ask.
        similar_query(service, "overlay")
        assert service.engine.verifier_pool.evictions > 0
        again = similar_query(service, "adaptor")
        assert again.payload["matches"] == first.payload["matches"]

    def test_stats_expose_verifier_section(self):
        service = make_service(self.built, verifier_pool_limit=4)
        similar_query(service, "adaptor")
        response = run(service.handle(Request("GET", "/stats")))
        assert response.status == 200
        verifier = response.payload["verifier"]
        assert verifier["shared_pool"] is True
        assert verifier["kernel"] == service.engine.edit_kernel.name
        assert verifier["max_verifiers"] == 4
        assert verifier["verifiers"] >= 1
        assert verifier["computed"] >= 0
        for counter in ("hits", "misses", "evictions", "memo_hits",
                        "prefilter_rejected", "batches_flat",
                        "batches_shared"):
            assert isinstance(verifier[counter], int)

    def test_query_response_carries_verifier_delta(self):
        service = make_service(self.built)
        response = similar_query(service, "adaptor")
        cost = response.payload["cost"]
        assert "verifier" in cost
        assert cost["verifier"]["kernel"] == service.engine.edit_kernel.name
        assert cost["verifier"]["computed"] >= 0

    def test_forced_kernels_serve_identical_matches(self):
        reference = make_service(self.built, edit_kernel="reference")
        myers = make_service(self.built, edit_kernel="myers")
        for word in ("adaptor", "overlaps", "strategem"):
            a = similar_query(reference, word, d=2)
            b = similar_query(myers, word, d=2)
            assert a.payload["matches"] == b.payload["matches"]
        assert reference.engine.edit_kernel.name == "reference"
        assert myers.engine.edit_kernel.name.startswith("myers")
