"""Unit tests for the per-peer sorted datastore."""

import pytest

from repro.core.config import StoreConfig
from repro.overlay.hashing import CompositeKeyCodec
from repro.storage.datastore import LocalDataStore
from repro.storage.indexing import EntryFactory, EntryKind, IndexEntry
from repro.storage.triple import Triple


def entries_for_words(words):
    config = StoreConfig(seed=1)
    fac = EntryFactory(config, CompositeKeyCodec(config))
    entries = []
    for i, w in enumerate(words):
        entries.extend(fac.entries_for(Triple(f"w:{i}", "t:x", w)))
    return entries


@pytest.fixture()
def store():
    s = LocalDataStore()
    s.add_bulk(entries_for_words(["alpha", "beta", "gamma", "delta"]))
    return s


class TestBasics:
    def test_len(self, store):
        assert len(store) > 0

    def test_bulk_count(self):
        s = LocalDataStore()
        entries = entries_for_words(["one"])
        assert s.add_bulk(entries) == len(entries)

    def test_iteration_sorted(self, store):
        keys = [e.key for e in store]
        assert keys == sorted(keys)

    def test_incremental_add_keeps_order(self, store):
        extra = entries_for_words(["omega"])
        for entry in extra:
            store.add(entry)
        keys = [e.key for e in store]
        assert keys == sorted(keys)

    def test_remove_present(self, store):
        entry = next(iter(store))
        assert store.remove(entry)
        assert entry not in list(store)

    def test_remove_absent(self, store):
        foreign = entries_for_words(["nothere"])[0]
        assert not store.remove(foreign)


class TestReads:
    def test_lookup_exact(self, store):
        entry = next(iter(store))
        found = store.lookup(entry.key)
        assert entry in found
        assert all(e.key == entry.key for e in found)

    def test_lookup_missing(self, store):
        assert store.lookup("0" * 32) == [] or all(
            e.key == "0" * 32 for e in store.lookup("0" * 32)
        )

    def test_prefix_scan(self, store):
        entry = next(iter(store))
        prefix = entry.key[:10]
        found = store.prefix_scan(prefix)
        assert entry in found
        assert all(e.key.startswith(prefix) for e in found)

    def test_prefix_scan_empty_prefix_returns_all(self, store):
        assert len(store.prefix_scan("")) == len(store)

    def test_range_scan_inclusive(self, store):
        keys = sorted(e.key for e in store)
        lo, hi = keys[2], keys[-3]
        found = store.range_scan(lo, hi)
        assert all(lo <= e.key <= hi for e in found)
        assert len(found) == sum(1 for k in keys if lo <= k <= hi)

    def test_count_prefix_matches_scan(self, store):
        entry = next(iter(store))
        for width in (0, 4, 8, 16):
            prefix = entry.key[:width]
            assert store.count_prefix(prefix) == len(store.prefix_scan(prefix))

    def test_entries_of_kind(self, store):
        oids = list(store.entries_of_kind(EntryKind.OID))
        assert oids
        assert all(e.kind is EntryKind.OID for e in oids)

    def test_key_bounds(self, store):
        lo, hi = store.key_bounds()
        keys = [e.key for e in store]
        assert (lo, hi) == (min(keys), max(keys))

    def test_key_bounds_empty(self):
        assert LocalDataStore().key_bounds() is None

    def test_payload_bytes_positive(self, store):
        assert store.payload_bytes() > 0

    def test_local_density(self, store):
        density = store.local_density("", 32)
        assert density == pytest.approx(len(store) / (1 << 32))
