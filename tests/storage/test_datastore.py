"""Unit tests for the per-peer sorted datastore."""

import pytest

from repro.core.config import StoreConfig
from repro.overlay.hashing import CompositeKeyCodec
from repro.storage.datastore import LocalDataStore
from repro.storage.indexing import EntryFactory, EntryKind
from repro.storage.triple import Triple


def entries_for_words(words):
    config = StoreConfig(seed=1)
    fac = EntryFactory(config, CompositeKeyCodec(config))
    entries = []
    for i, w in enumerate(words):
        entries.extend(fac.entries_for(Triple(f"w:{i}", "t:x", w)))
    return entries


@pytest.fixture()
def store():
    s = LocalDataStore()
    s.add_bulk(entries_for_words(["alpha", "beta", "gamma", "delta"]))
    return s


class TestBasics:
    def test_len(self, store):
        assert len(store) > 0

    def test_bulk_count(self):
        s = LocalDataStore()
        entries = entries_for_words(["one"])
        assert s.add_bulk(entries) == len(entries)

    def test_iteration_sorted(self, store):
        keys = [e.key for e in store]
        assert keys == sorted(keys)

    def test_incremental_add_keeps_order(self, store):
        extra = entries_for_words(["omega"])
        for entry in extra:
            store.add(entry)
        keys = [e.key for e in store]
        assert keys == sorted(keys)

    def test_remove_present(self, store):
        entry = next(iter(store))
        assert store.remove(entry)
        assert entry not in list(store)

    def test_remove_absent(self, store):
        foreign = entries_for_words(["nothere"])[0]
        assert not store.remove(foreign)


class TestReads:
    def test_lookup_exact(self, store):
        entry = next(iter(store))
        found = store.lookup(entry.key)
        assert entry in found
        assert all(e.key == entry.key for e in found)

    def test_lookup_missing(self, store):
        assert store.lookup("0" * 32) == [] or all(
            e.key == "0" * 32 for e in store.lookup("0" * 32)
        )

    def test_prefix_scan(self, store):
        entry = next(iter(store))
        prefix = entry.key[:10]
        found = store.prefix_scan(prefix)
        assert entry in found
        assert all(e.key.startswith(prefix) for e in found)

    def test_prefix_scan_empty_prefix_returns_all(self, store):
        assert len(store.prefix_scan("")) == len(store)

    def test_range_scan_inclusive(self, store):
        keys = sorted(e.key for e in store)
        lo, hi = keys[2], keys[-3]
        found = store.range_scan(lo, hi)
        assert all(lo <= e.key <= hi for e in found)
        assert len(found) == sum(1 for k in keys if lo <= k <= hi)

    def test_count_prefix_matches_scan(self, store):
        entry = next(iter(store))
        for width in (0, 4, 8, 16):
            prefix = entry.key[:width]
            assert store.count_prefix(prefix) == len(store.prefix_scan(prefix))

    def test_entries_of_kind(self, store):
        oids = list(store.entries_of_kind(EntryKind.OID))
        assert oids
        assert all(e.kind is EntryKind.OID for e in oids)

    def test_key_bounds(self, store):
        lo, hi = store.key_bounds()
        keys = [e.key for e in store]
        assert (lo, hi) == (min(keys), max(keys))

    def test_key_bounds_empty(self):
        assert LocalDataStore().key_bounds() is None

    def test_payload_bytes_positive(self, store):
        assert store.payload_bytes() > 0

    def test_local_density(self, store):
        density = store.local_density("", 32)
        assert density == pytest.approx(len(store) / (1 << 32))


class TestSecondaryIndexes:
    def test_lookup_equals_scan(self, store):
        for entry in store:
            assert store.lookup(entry.key) == store.lookup_scan(entry.key)

    def test_postings_track_incremental_add(self, store):
        entry = next(iter(store))
        store.lookup(entry.key)  # warm the postings map
        extra = entries_for_words(["omega"])
        for e in extra:
            store.add(e)
        for e in extra:
            assert e in store.lookup(e.key)
            assert store.lookup(e.key) == store.lookup_scan(e.key)

    def test_postings_invalidate_on_bulk(self, store):
        entry = next(iter(store))
        store.lookup(entry.key)  # warm
        extra = entries_for_words(["sigma"])
        store.add_bulk(extra)
        for e in extra:
            assert e in store.lookup(e.key)

    def test_postings_track_remove(self, store):
        entry = next(iter(store))
        store.lookup(entry.key)  # warm
        assert store.remove(entry)
        assert entry not in store.lookup(entry.key)
        assert store.lookup(entry.key) == store.lookup_scan(entry.key)

    def test_kind_view_equals_scan(self, store):
        for kind in EntryKind:
            assert list(store.entries_of_kind(kind)) == list(
                store.entries_of_kind_scan(kind)
            )

    def test_kind_prefix_scan_equals_filtered_prefix_scan(self, store):
        entry = next(iter(store))
        for width in (0, 4, 10):
            prefix = entry.key[:width]
            for kind in (EntryKind.ATTR_VALUE, EntryKind.OID):
                expected = [
                    e for e in store.prefix_scan(prefix) if e.kind is kind
                ]
                assert store.entries_of_kind_prefix(kind, prefix) == expected

    def test_kind_prefix_scan_absent_kind(self):
        assert LocalDataStore().entries_of_kind_prefix(EntryKind.OID, "") == []

    def test_kind_view_rebuilds_after_add(self, store):
        before = len(list(store.entries_of_kind(EntryKind.OID)))
        for e in entries_for_words(["extra"]):
            store.add(e)
        after = len(list(store.entries_of_kind(EntryKind.OID)))
        assert after == before + 1

    def test_total_payload_bytes_alias(self, store):
        assert store.total_payload_bytes() == store.payload_bytes()

    def test_payload_cache_tracks_add_and_remove(self, store):
        total = store.payload_bytes()
        extra = entries_for_words(["rho"])
        store.add_bulk(extra)
        total += sum(e.payload_size() for e in extra)
        assert store.payload_bytes() == total
        store.remove(extra[0])
        total -= extra[0].payload_size()
        assert store.payload_bytes() == total
        assert store.payload_bytes() == sum(e.payload_size() for e in store)
