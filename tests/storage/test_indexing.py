"""Unit tests for index-entry generation."""

import pytest

from repro.core.config import StoreConfig
from repro.overlay.hashing import CompositeKeyCodec
from repro.storage.indexing import EntryFactory, EntryKind
from repro.storage.triple import Triple


def factory(**config_changes) -> EntryFactory:
    config = StoreConfig(seed=1).replace(**config_changes)
    return EntryFactory(config, CompositeKeyCodec(config))


class TestEntryGeneration:
    def test_string_triple_produces_all_families(self):
        entries = list(factory().entries_for(Triple("w:1", "word:text", "hello")))
        kinds = {e.kind for e in entries}
        assert kinds == {
            EntryKind.OID,
            EntryKind.ATTR_VALUE,
            EntryKind.VALUE,
            EntryKind.INSTANCE_GRAM,
            EntryKind.SCHEMA_GRAM,
        }

    def test_instance_gram_count(self):
        entries = list(factory().entries_for(Triple("w:1", "word:text", "hello")))
        grams = [e for e in entries if e.kind is EntryKind.INSTANCE_GRAM]
        assert len(grams) == len("hello") + 2  # extended grams, q=3

    def test_schema_gram_count(self):
        entries = list(factory().entries_for(Triple("w:1", "word:text", "hello")))
        grams = [e for e in entries if e.kind is EntryKind.SCHEMA_GRAM]
        assert len(grams) == len("word:text") + 2

    def test_numeric_value_has_no_instance_grams(self):
        entries = list(factory().entries_for(Triple("w:1", "word:len", 5)))
        assert not any(e.kind is EntryKind.INSTANCE_GRAM for e in entries)

    def test_gram_entries_carry_positions(self):
        entries = factory().entries_for(Triple("w:1", "word:text", "hello"))
        for entry in entries:
            if entry.kind is EntryKind.INSTANCE_GRAM:
                assert entry.gram is not None
                assert entry.source_length == 5
                assert entry.position >= 0

    def test_disable_value_index(self):
        entries = list(
            factory(index_values=False).entries_for(Triple("w:1", "a", "x"))
        )
        assert not any(e.kind is EntryKind.VALUE for e in entries)

    def test_disable_gram_indexes(self):
        entries = list(
            factory(
                index_instance_grams=False, index_schema_grams=False
            ).entries_for(Triple("w:1", "a", "xyz"))
        )
        kinds = {e.kind for e in entries}
        assert kinds == {EntryKind.OID, EntryKind.ATTR_VALUE, EntryKind.VALUE}

    def test_keys_full_width(self):
        config = StoreConfig(seed=1)
        for entry in factory().entries_for(Triple("w:1", "a", "xyz")):
            assert len(entry.key) == config.key_bits

    def test_payload_size_positive(self):
        for entry in factory().entries_for(Triple("w:1", "a", "xyz")):
            assert entry.payload_size() > 0


class TestStorageAmplification:
    def test_amplification_counts_entries_per_triple(self):
        fac = factory()
        triples = [Triple("w:1", "t:x", "hello"), Triple("w:2", "t:x", "worlds")]
        amplification = fac.storage_amplification(triples)
        entries = sum(1 for t in triples for __ in fac.entries_for(t))
        assert amplification == pytest.approx(entries / 2)

    def test_empty_input(self):
        assert factory().storage_amplification([]) == 0.0

    def test_q_increases_entry_count(self):
        triple = Triple("w:1", "t:x", "hello")
        small_q = sum(1 for __ in factory(q=2).entries_for(triple))
        large_q = sum(1 for __ in factory(q=4).entries_for(triple))
        assert large_q > small_q  # extension adds q-1 pads per side
