"""Unit tests for triples and value validation."""

import pytest

from repro.core.errors import StorageError
from repro.storage.triple import Triple, check_value, is_numeric, make_oid


class TestTriple:
    def test_components(self):
        triple = Triple("car:000001", "car:name", "bmw")
        assert triple.component(1) == "car:000001"
        assert triple.component(2) == "car:name"
        assert triple.component(3) == "bmw"

    def test_component_out_of_range(self):
        triple = Triple("a", "b", "c")
        with pytest.raises(StorageError):
            triple.component(4)

    def test_namespace_split(self):
        triple = Triple("x", "car:name", "bmw")
        assert triple.namespace == "car"
        assert triple.local_name == "name"

    def test_unqualified_attribute(self):
        triple = Triple("x", "name", "bmw")
        assert triple.namespace == ""
        assert triple.local_name == "name"

    def test_numeric_values_allowed(self):
        assert Triple("x", "a", 42).value == 42
        assert Triple("x", "a", 3.14).value == 3.14

    def test_hashable_and_equal(self):
        assert Triple("x", "a", 1) == Triple("x", "a", 1)
        assert len({Triple("x", "a", 1), Triple("x", "a", 1)}) == 1

    def test_rejects_empty_oid(self):
        with pytest.raises(StorageError):
            Triple("", "a", 1)

    def test_rejects_empty_attribute(self):
        with pytest.raises(StorageError):
            Triple("x", "", 1)

    def test_rejects_bool_value(self):
        with pytest.raises(StorageError):
            Triple("x", "a", True)

    def test_rejects_nan(self):
        with pytest.raises(StorageError):
            Triple("x", "a", float("nan"))

    def test_rejects_none(self):
        with pytest.raises(StorageError):
            Triple("x", "a", None)  # type: ignore[arg-type]

    def test_payload_size_scales_with_content(self):
        short = Triple("x", "a", "hi")
        long = Triple("x", "a", "hi" * 50)
        assert long.payload_size() > short.payload_size()

    def test_payload_size_numeric(self):
        assert Triple("x", "a", 12345678).payload_size() > 0

    def test_attribute_interned(self):
        a = Triple("x", "shared:attr", 1)
        b = Triple("y", "shared:attr", 2)
        assert a.attribute is b.attribute


class TestHelpers:
    def test_check_value_passthrough(self):
        assert check_value("s") == "s"
        assert check_value(1) == 1

    def test_is_numeric(self):
        assert is_numeric(1)
        assert is_numeric(1.5)
        assert not is_numeric("1")
        assert not is_numeric(True)

    def test_make_oid(self):
        assert make_oid("car", 42) == "car:000042"

    def test_make_oid_requires_namespace(self):
        with pytest.raises(StorageError):
            make_oid("", 1)
