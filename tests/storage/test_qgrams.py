"""Unit tests for extended positional q-grams and q-samples."""

import pytest

from repro.core.errors import StorageError
from repro.storage.qgrams import (
    BEGIN_PAD,
    END_PAD,
    count_filter_threshold,
    extend,
    guaranteed_complete,
    positional_qgrams,
    qgram_sample,
    qgram_set,
    qgram_tuples,
    shared_gram_count,
)


class TestQGramTuples:
    def test_matches_dataclass_decomposition(self):
        for text in ("", "a", "abc", "hello world"):
            for q in (1, 2, 3, 4):
                tuples = qgram_tuples(text, q)
                grams = positional_qgrams(text, q)
                assert tuples == [(g.gram, g.position) for g in grams]

    def test_invalid_q(self):
        with pytest.raises(StorageError):
            qgram_tuples("ab", 0)


class TestExtend:
    def test_extension_shape(self):
        assert extend("ab", 3) == BEGIN_PAD * 2 + "ab" + END_PAD * 2

    def test_q1_no_padding(self):
        assert extend("ab", 1) == "ab"

    def test_invalid_q(self):
        with pytest.raises(StorageError):
            extend("ab", 0)


class TestPositionalQGrams:
    def test_gram_count_formula(self):
        # |s| + q - 1 grams for the extended decomposition.
        for text in ("a", "ab", "abcdef"):
            grams = positional_qgrams(text, 3)
            assert len(grams) == len(text) + 2

    def test_positions_sequential(self):
        grams = positional_qgrams("abc", 3)
        assert [g.position for g in grams] == [0, 1, 2, 3, 4]

    def test_source_length_recorded(self):
        for gram in positional_qgrams("abcd", 3):
            assert gram.source_length == 4

    def test_empty_string_still_has_grams(self):
        grams = positional_qgrams("", 3)
        assert len(grams) == 2

    def test_gram_width(self):
        assert all(len(g.gram) == 3 for g in positional_qgrams("hello", 3))


class TestQGramSample:
    def test_sample_size_is_d_plus_one(self):
        sample = qgram_sample("abcdefghijkl", 3, 2)
        assert len(sample) == 3

    def test_sample_non_overlapping(self):
        sample = qgram_sample("abcdefghijkl", 3, 2)
        positions = [g.position for g in sample]
        assert positions == [0, 3, 6]

    def test_short_string_falls_back_to_full_set(self):
        # 'apple' extended is 9 chars; d=5 needs 6 disjoint grams = 18.
        sample = qgram_sample("apple", 3, 5)
        full = positional_qgrams("apple", 3)
        assert sample == full

    def test_d_zero_single_gram(self):
        assert len(qgram_sample("abcdefgh", 3, 0)) == 1

    def test_negative_d_rejected(self):
        with pytest.raises(StorageError):
            qgram_sample("abc", 3, -1)

    def test_sample_survival_guarantee(self):
        # One edit destroys at most one disjoint gram: a string within
        # distance d shares at least one sampled gram.
        from repro.similarity.edit_distance import edit_distance

        s = "abcdefghijklmnop"
        t = "abXdefghijklmnop"  # one substitution
        d = edit_distance(s, t)
        sample = qgram_sample(s, 3, d)
        target_grams = qgram_set(t, 3)
        assert any(g.gram in target_grams for g in sample)


class TestCountFilter:
    def test_paper_formula(self):
        assert count_filter_threshold(10, 8, 3, 2) == 10 - 1 - 3

    def test_threshold_nonpositive_for_short_strings(self):
        assert count_filter_threshold(3, 3, 3, 2) <= 0

    def test_bound_holds_for_real_pairs(self):
        # Verify the Gravano bound on concrete edit pairs.
        from repro.similarity.edit_distance import edit_distance

        pairs = [
            ("overlay", "overlap"),
            ("similarity", "similarly"),
            ("structured", "strctured"),
            ("karlsruhe", "karlsruhe"),
        ]
        for a, b in pairs:
            d = edit_distance(a, b)
            threshold = count_filter_threshold(len(a), len(b), 3, max(d, 1))
            assert shared_gram_count(a, b, 3) >= threshold


class TestGuaranteedComplete:
    def test_long_enough_strings(self):
        assert guaranteed_complete(10, 3, 2)

    def test_short_strings_not_guaranteed(self):
        assert not guaranteed_complete(3, 3, 3)

    def test_boundary(self):
        # len >= 2 + (d-1)*q exactly.
        assert guaranteed_complete(5, 3, 2)
        assert not guaranteed_complete(4, 3, 2)
