"""Unit tests for relation schemas and decomposition."""

import pytest

from repro.core.errors import SchemaError
from repro.storage.schema import (
    RelationSchema,
    qualify,
    record_to_triples,
    rows_to_triples,
)


class TestQualify:
    def test_adds_namespace(self):
        assert qualify("car", "name") == "car:name"

    def test_keeps_qualified(self):
        assert qualify("car", "dealer:id") == "dealer:id"

    def test_empty_namespace(self):
        assert qualify("", "name") == "name"

    def test_rejects_empty_attribute(self):
        with pytest.raises(SchemaError):
            qualify("car", "")


class TestRecordToTriples:
    def test_basic_decomposition(self):
        triples = record_to_triples("car:1", {"name": "bmw", "hp": 300}, "car")
        assert {(t.attribute, t.value) for t in triples} == {
            ("car:name", "bmw"),
            ("car:hp", 300),
        }
        assert all(t.oid == "car:1" for t in triples)

    def test_none_values_skipped(self):
        triples = record_to_triples("x", {"a": 1, "b": None})
        assert [t.attribute for t in triples] == ["a"]

    def test_without_namespace(self):
        triples = record_to_triples("x", {"a": 1})
        assert triples[0].attribute == "a"


class TestRelationSchema:
    def test_tuple_to_triples(self):
        schema = RelationSchema("car", ("name", "hp"))
        triples = schema.tuple_to_triples("car:000001", {"name": "vw", "hp": 90})
        assert len(triples) == 2
        assert triples[0].attribute.startswith("car:")

    def test_schema_extension_allowed_by_default(self):
        schema = RelationSchema("car", ("name",))
        triples = schema.tuple_to_triples("car:1", {"name": "vw", "color": "red"})
        assert {t.attribute for t in triples} == {"car:name", "car:color"}

    def test_strict_mode_rejects_extension(self):
        schema = RelationSchema("car", ("name",), strict=True)
        with pytest.raises(SchemaError):
            schema.tuple_to_triples("car:1", {"name": "vw", "color": "red"})

    def test_make_oid(self):
        schema = RelationSchema("car", ("name",))
        assert schema.make_oid(7) == "car:000007"

    def test_qualified(self):
        schema = RelationSchema("car", ("name",))
        assert schema.qualified("name") == "car:name"

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("a",))

    def test_rejects_no_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ())

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("a", "a"))


class TestRowsToTriples:
    def test_sequential_oids(self):
        schema = RelationSchema("w", ("t",))
        triples = rows_to_triples(schema, [{"t": "x"}, {"t": "y"}])
        assert [t.oid for t in triples] == ["w:000000", "w:000001"]
