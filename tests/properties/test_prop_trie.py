"""Property-based tests: trie covers and the responsibility oracle."""

from hypothesis import given, settings, strategies as st

from repro.overlay import trie


class TestUniformCover:
    @given(st.integers(min_value=1, max_value=200))
    def test_cover_is_complete_and_prefix_free(self, n):
        paths = trie.uniform_paths(n)
        trie.validate_cover(paths)
        assert len(paths) == n

    @given(st.integers(min_value=1, max_value=200))
    def test_depths_differ_by_at_most_one(self, n):
        depths = {len(p) for p in trie.uniform_paths(n)}
        assert max(depths) - min(depths) <= 1


class TestDataAwareCover:
    @settings(max_examples=50)
    @given(
        st.integers(min_value=1, max_value=64),
        st.lists(st.integers(min_value=0, max_value=(1 << 16) - 1), max_size=150),
    )
    def test_cover_complete_for_any_distribution(self, n, values):
        keys = [format(v, "016b") for v in values]
        paths = trie.data_aware_paths(n, keys, 16)
        trie.validate_cover(paths)
        assert len(paths) == n

    @settings(max_examples=50)
    @given(
        st.integers(min_value=2, max_value=32),
        st.lists(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            min_size=1,
            max_size=100,
        ),
    )
    def test_every_key_has_exactly_one_owner(self, n, values):
        keys = [format(v, "016b") for v in values]
        paths = sorted(trie.data_aware_paths(n, keys, 16))
        for key in keys:
            index = trie.find_responsible(paths, key)
            owners = [p for p in paths if key.startswith(p)]
            assert owners == [paths[index]]

    @settings(max_examples=50)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            min_size=1,
            max_size=120,
        )
    )
    def test_loads_sum_to_key_count(self, values):
        keys = [format(v, "016b") for v in values]
        paths = sorted(trie.data_aware_paths(8, keys, 16))
        assert sum(trie.partition_load(paths, keys)) == len(keys)
