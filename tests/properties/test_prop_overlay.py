"""Property-based tests: routing correctness and range-query completeness.

These build small networks per example, so example counts are kept modest.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import StoreConfig
from repro.overlay.network import PGridNetwork
from repro.overlay.range_query import range_query
from repro.storage.indexing import EntryKind
from repro.storage.triple import Triple

ATTR = "t:v"

word_lists = st.lists(
    st.text(alphabet="abcdef", min_size=1, max_size=8),
    min_size=1,
    max_size=25,
    unique=True,
)


def build(words, n_peers, seed):
    config = StoreConfig(seed=seed)
    triples = [Triple(f"x:{i:03d}", ATTR, w) for i, w in enumerate(words)]
    probe = PGridNetwork(1, config)
    sample = [e.key for e in probe.entry_factory.entries_for_all(triples)]
    network = PGridNetwork(n_peers, config, sample_keys=sample)
    network.insert_triples(triples)
    return network


class TestRoutingProperties:
    @settings(max_examples=25, deadline=None)
    @given(word_lists, st.integers(min_value=1, max_value=40), st.integers(0, 5))
    def test_retrieve_finds_every_inserted_word(self, words, n_peers, seed):
        network = build(words, n_peers, seed)
        start = seed % network.n_peers
        for word in words:
            key = network.codec.attr_value_key(ATTR, word)
            entries, __ = network.router.retrieve(key, start)
            found = {
                e.triple.value
                for e in entries
                if e.kind is EntryKind.ATTR_VALUE and e.triple.attribute == ATTR
            }
            assert word in found

    @settings(max_examples=25, deadline=None)
    @given(word_lists, st.integers(min_value=2, max_value=40), st.integers(0, 5))
    def test_route_terminates_at_responsible_peer(self, words, n_peers, seed):
        network = build(words, n_peers, seed)
        for word in words[:5]:
            key = network.codec.attr_value_key(ATTR, word)
            peer = network.router.route(key, (seed * 7) % network.n_peers)
            assert peer.responsible_for(key)


class TestRangeProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=25,
            unique=True,
        ),
        st.integers(min_value=1, max_value=30),
        st.integers(-1000, 1000),
        st.integers(0, 300),
    )
    def test_range_query_complete_and_sound(self, values, n_peers, lo, width):
        config = StoreConfig(seed=1)
        triples = [Triple(f"x:{i:03d}", ATTR, v) for i, v in enumerate(values)]
        probe = PGridNetwork(1, config)
        sample = [e.key for e in probe.entry_factory.entries_for_all(triples)]
        network = PGridNetwork(n_peers, config, sample_keys=sample)
        network.insert_triples(triples)
        hi = lo + width
        lo_key, hi_key = network.codec.attr_value_range(ATTR, float(lo), float(hi))
        outcome = range_query(network.router, lo_key, hi_key, 0)
        got = sorted(
            e.triple.value
            for e in outcome.entries
            if e.kind is EntryKind.ATTR_VALUE
            and e.triple.attribute == ATTR
            and lo <= float(e.triple.value) <= hi
        )
        expected = sorted(v for v in values if lo <= v <= hi)
        assert got == expected
