"""Property-based tests: the Similar operator vs. brute force.

The central guarantee of the paper's Algorithm 2: for every strategy, the
operator returns exactly the stored strings within edit distance ``d`` of
the query — *within the completeness regime* (``len(s) >= 2 + (d-1)*q``,
see ``repro.storage.qgrams.guaranteed_complete``).  The naive baseline is
complete unconditionally.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.overlay.network import PGridNetwork
from repro.query.operators.base import OperatorContext
from repro.query.operators.similar import similar
from repro.similarity.edit_distance import edit_distance
from repro.storage.qgrams import guaranteed_complete
from repro.storage.triple import Triple

ATTR = "t:v"

corpora = st.lists(
    st.text(alphabet="abcde", min_size=1, max_size=10),
    min_size=1,
    max_size=20,
    unique=True,
)


def build_ctx(words, n_peers, seed):
    config = StoreConfig(seed=seed)
    triples = [Triple(f"x:{i:03d}", ATTR, w) for i, w in enumerate(words)]
    probe = PGridNetwork(1, config)
    sample = [e.key for e in probe.entry_factory.entries_for_all(triples)]
    network = PGridNetwork(n_peers, config, sample_keys=sample)
    network.insert_triples(triples)
    return OperatorContext(network)


class TestSimilarCompleteness:
    @settings(max_examples=20, deadline=None)
    @given(
        corpora,
        st.text(alphabet="abcde", min_size=1, max_size=10),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=4, max_value=24),
    )
    def test_naive_matches_brute_force(self, words, query, d, n_peers):
        ctx = build_ctx(words, n_peers, seed=2)
        result = similar(
            ctx, query, ATTR, d, strategy=SimilarityStrategy.NAIVE
        )
        expected = sorted(w for w in words if edit_distance(query, w) <= d)
        assert sorted(m.matched for m in result.matches) == expected

    @settings(max_examples=20, deadline=None)
    @given(
        corpora,
        st.text(alphabet="abcde", min_size=1, max_size=10),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=4, max_value=24),
    )
    def test_qgram_complete_in_guaranteed_regime(self, words, query, d, n_peers):
        ctx = build_ctx(words, n_peers, seed=3)
        result = similar(ctx, query, ATTR, d, strategy=SimilarityStrategy.QGRAM)
        got = sorted(m.matched for m in result.matches)
        expected = sorted(w for w in words if edit_distance(query, w) <= d)
        if guaranteed_complete(len(query), ctx.config.q, d):
            assert got == expected
        else:
            # Soundness always holds; completeness may not.
            assert set(got) <= set(expected)

    @settings(max_examples=20, deadline=None)
    @given(
        corpora,
        st.text(alphabet="abcde", min_size=1, max_size=10),
        st.integers(min_value=0, max_value=2),
    )
    def test_qsample_sound_and_complete_when_guaranteed(self, words, query, d):
        ctx = build_ctx(words, 16, seed=4)
        result = similar(
            ctx, query, ATTR, d, strategy=SimilarityStrategy.QSAMPLE
        )
        got = sorted(m.matched for m in result.matches)
        expected = sorted(w for w in words if edit_distance(query, w) <= d)
        assert set(got) <= set(expected)  # soundness, always
        # The sample guarantee needs d+1 disjoint grams of the extended
        # query: len + q - 1 >= q * (d + 1); shorter queries fall back to
        # the full set, whose guarantee is the count-bound regime.
        if guaranteed_complete(len(query), ctx.config.q, d):
            assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(corpora, st.integers(min_value=0, max_value=2))
    def test_strategies_agree_on_stored_queries(self, words, d):
        """Querying a stored string: all strategies find it (distance 0)."""
        ctx = build_ctx(words, 16, seed=5)
        query = words[0]
        for strategy in SimilarityStrategy:
            result = similar(ctx, query, ATTR, d, strategy=strategy)
            assert query in {m.matched for m in result.matches}
