"""Property-based tests: q-gram decompositions and the count bound."""

from hypothesis import given, settings, strategies as st

from repro.similarity.edit_distance import edit_distance
from repro.storage.qgrams import (
    count_filter_threshold,
    extend,
    positional_qgrams,
    qgram_sample,
    qgram_set,
    shared_gram_count,
)


def sample_fell_back(text: str, q: int, d: int) -> bool:
    """True when qgram_sample returned the full set (string too short)."""
    return len(extend(text, q)) < q * (d + 1)

words = st.text(alphabet="abcdef", max_size=14)
qs = st.integers(min_value=2, max_value=4)
ds = st.integers(min_value=0, max_value=4)


class TestDecomposition:
    @given(words, qs)
    def test_gram_count_formula(self, text, q):
        assert len(positional_qgrams(text, q)) == len(text) + q - 1

    @given(words, qs)
    def test_gram_width_uniform(self, text, q):
        assert all(len(g.gram) == q for g in positional_qgrams(text, q))

    @given(words, qs)
    def test_positions_strictly_increasing(self, text, q):
        positions = [g.position for g in positional_qgrams(text, q)]
        assert positions == list(range(len(positions)))

    @given(words, qs, ds)
    def test_sample_is_subset_of_full_set(self, text, q, d):
        full = {(g.gram, g.position) for g in positional_qgrams(text, q)}
        sample = {(g.gram, g.position) for g in qgram_sample(text, q, d)}
        assert sample <= full

    @given(words, qs, ds)
    def test_sample_grams_disjoint_or_full_fallback(self, text, q, d):
        sample = qgram_sample(text, q, d)
        if sample_fell_back(text, q, d):
            assert sample == positional_qgrams(text, q)
        else:
            assert len(sample) == d + 1
            positions = [g.position for g in sample]
            assert all(
                later - earlier >= q
                for earlier, later in zip(positions, positions[1:])
            )


class TestCountBound:
    @settings(max_examples=200)
    @given(words, words, qs)
    def test_gravano_bound(self, a, b, q):
        """Strings within edit distance d share >= the threshold grams."""
        d = edit_distance(a, b)
        if d == 0:
            return
        threshold = count_filter_threshold(len(a), len(b), q, d)
        assert shared_gram_count(a, b, q) >= threshold

    @settings(max_examples=200)
    @given(words, words, qs, ds)
    def test_sample_survival(self, a, b, q, d):
        """If edit(a,b) <= d, some sampled gram of a occurs in b's full set.

        Holds whenever the sample could supply d+1 disjoint grams (else
        the implementation falls back to the full set, making the check
        equivalent to the count bound with threshold >= 1 or vacuous).
        """
        if edit_distance(a, b) > d:
            return
        if sample_fell_back(a, q, d):
            return  # full-set fallback; covered by the count-bound test
        sample = qgram_sample(a, q, d)
        target = qgram_set(b, q)
        assert any(g.gram in target for g in sample)

    @settings(max_examples=200)
    @given(words, words, qs, ds)
    def test_sample_survivor_position_shift_bounded(self, a, b, q, d):
        """A surviving sampled gram appears within +/- d positions."""
        if edit_distance(a, b) > d:
            return
        if sample_fell_back(a, q, d):
            return
        sample = qgram_sample(a, q, d)
        b_grams = positional_qgrams(b, q)
        assert any(
            g.gram == other.gram and abs(g.position - other.position) <= d
            for g in sample
            for other in b_grams
        )
