"""Property-based tests: membership dynamics preserve the trie invariants.

Random join/leave sequences must keep the partition cover complete and
every stored item reachable — the invariant behind Algorithm 1's
termination/correctness argument.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import StoreConfig
from repro.core.errors import OverlayError
from repro.overlay import trie
from repro.overlay.membership import MembershipManager
from repro.overlay.network import PGridNetwork
from repro.storage.indexing import EntryKind
from repro.storage.triple import Triple

ATTR = "t:v"


def build(words, n_peers, seed):
    config = StoreConfig(seed=seed)
    triples = [Triple(f"x:{i:03d}", ATTR, w) for i, w in enumerate(words)]
    probe = PGridNetwork(1, config)
    sample = [e.key for e in probe.entry_factory.entries_for_all(triples)]
    network = PGridNetwork(n_peers, config, sample_keys=sample)
    network.insert_triples(triples)
    return network


WORDS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf"]


class TestMembershipInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=12),
        st.lists(st.booleans(), max_size=12),  # True = join, False = leave
        st.integers(0, 3),
    )
    def test_cover_and_reachability_survive_churn(self, n_peers, actions, seed):
        network = build(WORDS, n_peers, seed)
        manager = MembershipManager(network)
        joined: list[int] = []
        for is_join in actions:
            if is_join:
                joined.append(manager.join().peer_id)
            elif joined:
                try:
                    manager.leave(joined.pop())
                except OverlayError:
                    pass  # deep-sibling leaves legitimately refuse
            trie.validate_cover([p.path for p in network.partitions])

        start = network.random_peer_id()
        for word in WORDS:
            key = network.codec.attr_value_key(ATTR, word)
            entries, __ = network.router.retrieve(key, start)
            found = {
                e.triple.value
                for e in entries
                if e.kind is EntryKind.ATTR_VALUE and e.triple.attribute == ATTR
            }
            assert word in found

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=10), st.integers(1, 8))
    def test_joins_grow_partitions_monotonically(self, n_peers, joins):
        network = build(WORDS, n_peers, seed=1)
        manager = MembershipManager(network)
        previous = network.n_partitions
        for __ in range(joins):
            manager.join()
            assert network.n_partitions >= previous
            previous = network.n_partitions

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=10))
    def test_entries_stay_on_matching_paths(self, joins):
        network = build(WORDS, 4, seed=2)
        manager = MembershipManager(network)
        for __ in range(joins):
            manager.join()
        for peer in network.peers:
            if not peer.online:
                continue
            for entry in peer.store:
                assert entry.key.startswith(peer.path)
