"""Stateful equivalence of the delta-maintained engine under mutation.

A hypothesis rule-based state machine interleaves inserts, deletes,
peer failures, recoveries, and similarity queries on two engines over
identically-built networks:

* the **primary** — fully memoized, ``memo_maintenance="delta"``: writes
  invalidate only the affected partitions' memo entries;
* the **reference** — ``memoize=False``: every query recomputes from the
  stores, so it can never serve anything stale.

After every query the two answers must agree bit-for-bit — the match
lists *and* the measured cost series (messages, payload bytes, per-type
and per-phase breakdowns).  Any memo entry that survives a write it
should not have survived shows up here as a divergence; so does any
memo that changes what a query charges (memos are required to be
cost-transparent).

Both engines see the exact same op sequence with explicit initiator
peers, so their RNG streams never decouple; equivalence is exact, not
statistical.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.config import StoreConfig
from repro.engine import QueryEngine
from repro.query.operators.similar import similar
from repro.storage.triple import Triple

ATTR = "w:text"

WORDS = [
    "apple", "apply", "ample", "maple",
    "grape", "grace", "trace",
    "banana", "band", "bandana",
    "cherry", "berry", "merry",
]


def _answer(engine: QueryEngine, word: str, d: int, initiator: int) -> tuple:
    """One query's full observable: matches plus the measured series."""
    with engine.recorded():
        result = similar(engine.ctx, word, ATTR, d, initiator)
    cost = engine.last_cost()
    return (
        tuple(sorted((m.oid, m.matched, m.distance) for m in result.matches)),
        cost.messages,
        cost.payload_bytes,
        tuple(sorted(cost.by_type.items())),
        tuple(sorted(cost.by_phase.items())),
    )


class MutationEquivalence(RuleBasedStateMachine):
    @initialize(
        seed=st.integers(min_value=0, max_value=7),
        n_peers=st.sampled_from([8, 12, 16]),
    )
    def setup(self, seed, n_peers):
        config = StoreConfig(seed=seed, replication=2)
        triples = [Triple(f"w:{i:03d}", ATTR, w) for i, w in enumerate(WORDS)]
        # Same peers / config / data → deterministically identical
        # networks; only the memo wiring differs between the two arms.
        self.primary = QueryEngine.build(
            n_peers=n_peers, triples=triples, config=config,
            memo_maintenance="delta",
        )
        self.reference = QueryEngine.build(
            n_peers=n_peers, triples=triples, config=config, memoize=False
        )
        self.engines = (self.primary, self.reference)
        self.counter = 0
        self.live_batches: list[tuple[Triple, ...]] = []

    def teardown(self):
        for engine in getattr(self, "engines", ()):
            engine.close()

    # -- ops ----------------------------------------------------------------------

    @rule(
        word=st.sampled_from(WORDS),
        d=st.integers(min_value=0, max_value=2),
        initiator=st.integers(min_value=0, max_value=10**6),
    )
    def query(self, word, d, initiator):
        peer_id = initiator % self.primary.n_peers
        assert _answer(self.primary, word, d, peer_id) == _answer(
            self.reference, word, d, peer_id
        )

    @rule(
        base=st.sampled_from(WORDS),
        size=st.integers(min_value=1, max_value=3),
    )
    def insert(self, base, size):
        batch = tuple(
            Triple(f"m:{self.counter}:{i}", ATTR, f"{base}x{self.counter}")
            for i in range(size)
        )
        self.counter += 1
        # respect_online: offline replicas miss the write and stay
        # divergent until a recover() rule repairs them — identically in
        # both arms, since both see the same offline set.
        applied = [e.insert(list(batch), respect_online=True) for e in self.engines]
        assert applied[0] == applied[1]
        self.live_batches.append(batch)

    @precondition(lambda self: self.live_batches)
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def delete(self, pick):
        batch = self.live_batches.pop(pick % len(self.live_batches))
        applied = [e.delete(list(batch), respect_online=True) for e in self.engines]
        assert applied[0] == applied[1]

    @rule(peer=st.integers(min_value=0, max_value=10**6))
    def fail_peer(self, peer):
        peer_id = peer % self.primary.n_peers
        reports = [
            e.fail_peers([peer_id], protect_partitions=True)
            for e in self.engines
        ]
        assert reports[0].failed_peer_ids == reports[1].failed_peer_ids
        assert not reports[0].dark_partitions

    @precondition(lambda self: self.primary.churn.offline_peer_ids())
    @rule()
    def recover(self):
        reports = [e.recover(repair=True) for e in self.engines]
        assert reports[0].recovered_peers == reports[1].recovered_peers
        assert (
            reports[0].divergent_partitions == reports[1].divergent_partitions
        )
        assert reports[0].entries_copied == reports[1].entries_copied

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def stores_identical(self):
        if not hasattr(self, "engines"):
            return
        assert (
            self.primary.store_version == self.reference.store_version
        )


TestMutationEquivalence = MutationEquivalence.TestCase
TestMutationEquivalence.settings = settings(
    max_examples=200, stateful_step_count=10, deadline=None
)
