"""Property tests: the batched verifier is equivalent to the seed path.

The acceptance bar for the perf overhaul: for every ``(query, d)`` and
candidate multiset, :class:`BatchVerifier` must return exactly what the
per-candidate banded DP (``edit_distance_within``) returns — which is in
turn property-tested against brute-force ``edit_distance``.  The batch
suite here additionally interleaves single and batched calls so the
shared memo cannot drift, and replays the bible/paintings workload shape
(natural-language strings with heavy repeats) end-to-end.
"""

from hypothesis import given, settings, strategies as st

from repro.similarity.edit_distance import edit_distance, edit_distance_within
from repro.similarity.verify import BatchVerifier, VerifierPool

texts = st.text(alphabet="abz ", max_size=12)
distances = st.integers(min_value=0, max_value=5)


class TestEquivalence:
    @settings(max_examples=300)
    @given(texts, st.lists(texts, max_size=20), distances)
    def test_batch_matches_banded_dp(self, query, candidates, d):
        verifier = BatchVerifier(query, d)
        result = verifier.distances(candidates)
        for candidate in candidates:
            assert result[candidate] == edit_distance_within(query, candidate, d)

    @settings(max_examples=200)
    @given(texts, st.lists(texts, max_size=12), distances)
    def test_batch_matches_brute_force(self, query, candidates, d):
        verifier = BatchVerifier(query, d)
        result = verifier.distances(candidates)
        for candidate in candidates:
            assert result[candidate] == min(
                edit_distance(query, candidate), d + 1
            )

    @settings(max_examples=200)
    @given(texts, st.lists(texts, min_size=1, max_size=12), distances)
    def test_interleaved_singles_and_batches(self, query, candidates, d):
        verifier = BatchVerifier(query, d)
        half = len(candidates) // 2
        for candidate in candidates[:half]:
            assert verifier.distance(candidate) == edit_distance_within(
                query, candidate, d
            )
        result = verifier.distances(candidates)
        for candidate in candidates:
            assert result[candidate] == edit_distance_within(query, candidate, d)
            assert verifier.within(candidate) == (
                edit_distance_within(query, candidate, d) <= d
            )

    @settings(max_examples=100)
    @given(st.lists(st.tuples(texts, distances), max_size=8), texts)
    def test_pool_keeps_pairs_independent(self, pairs, probe):
        pool = VerifierPool()
        for query, d in pairs:
            assert pool.get(query, d).distance(probe) == edit_distance_within(
                query, probe, d
            )
