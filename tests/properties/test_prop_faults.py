"""Property-based tests for the fault layer and churn-repair invariants.

Three families:

* the bit-identity contract — an installed-but-empty :class:`FaultPlan`
  must leave every measured series identical to the direct path, over
  arbitrary seeds and query mixes;
* churn divergence — inserting while a replica is offline, then running
  anti-entropy repair, must always converge back to a consistent audit,
  including strings with repeated q-grams at different positions (the
  ``position``-in-signature fix);
* availability algebra — ``replicas_needed`` and
  ``partition_availability`` round-trip at arbitrary (and boundary)
  failure probabilities.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import StoreConfig
from repro.engine import QueryEngine
from repro.overlay.churn import ChurnController
from repro.overlay.faults import FaultPlan
from repro.overlay.replication import (
    audit_replicas,
    partition_availability,
    repair_partition,
    replicas_needed,
)
from repro.storage.triple import Triple

ATTR = "t:v"

word_lists = st.lists(
    st.text(alphabet="abcdef", min_size=2, max_size=8),
    min_size=3,
    max_size=15,
    unique=True,
)

#: Strings whose repeated q-grams occur at several positions — the worst
#: case for any position-less entry signature.
REPEATED_GRAM_WORDS = st.sampled_from(
    ["banana", "bandana", "aaaa", "abab", "ababab", "mississippi", "couscous"]
)


def build_engine(words, n_peers, seed, replication=1):
    config = StoreConfig(seed=seed, replication=replication)
    triples = [Triple(f"x:{i:03d}", ATTR, w) for i, w in enumerate(words)]
    return QueryEngine.build(n_peers=n_peers, triples=triples, config=config)


class TestNoopPlanBitIdentity:
    @settings(max_examples=10, deadline=None)
    @given(word_lists, st.integers(min_value=4, max_value=24), st.integers(0, 5))
    def test_installed_empty_plan_changes_nothing(self, words, n_peers, seed):
        def run(install):
            engine = build_engine(words, n_peers, seed)
            if install:
                engine.install_faults(FaultPlan.none(), mode="degraded")
            series = []
            for word in words:
                result = engine.similar(word, ATTR, 1)
                cost = engine.last_cost()
                series.append(
                    (
                        tuple(m.oid for m in result.matches),
                        cost.messages,
                        cost.payload_bytes,
                        tuple(sorted(cost.by_phase.items())),
                    )
                )
                assert cost.completeness is None
            return series

        assert run(False) == run(True)


class TestChurnRepairConvergence:
    @settings(max_examples=10, deadline=None)
    @given(
        word_lists,
        REPEATED_GRAM_WORDS,
        st.integers(min_value=8, max_value=24),
        st.integers(0, 5),
    )
    def test_insert_while_offline_then_repair_is_consistent(
        self, words, churn_word, n_peers, seed
    ):
        engine = build_engine(words, n_peers, seed, replication=2)
        assert audit_replicas(engine.network).consistent
        churn = ChurnController(engine.network, seed=seed)
        churn.fail_fraction(0.4, protect_partitions=True)
        # Writes the offline replicas miss — including one string whose
        # repeated q-grams must survive the signature round-trip.
        fresh = [Triple(f"f:{seed}:{i}", ATTR, w)
                 for i, w in enumerate([churn_word, churn_word + "x"])]
        engine.insert(fresh, respect_online=True)
        churn.recover_all()
        report = audit_replicas(engine.network)
        for index in report.divergent_partitions:
            repair_partition(engine.network, index)
        after = audit_replicas(engine.network)
        assert after.consistent, after.divergent_partitions

    @settings(max_examples=10, deadline=None)
    @given(REPEATED_GRAM_WORDS, st.integers(0, 3))
    def test_repaired_data_answers_queries(self, churn_word, seed):
        words = ["stable", "staple", "stables"]
        engine = build_engine(words, 16, seed, replication=2)
        churn = ChurnController(engine.network, seed=seed)
        churn.fail_fraction(0.5, protect_partitions=True)
        engine.insert(
            [Triple("f:q:0", ATTR, churn_word)], respect_online=True
        )
        churn.recover_all()
        report = audit_replicas(engine.network)
        for index in report.divergent_partitions:
            repair_partition(engine.network, index)
        engine.check_mutations()
        result = engine.similar(churn_word, ATTR, 0)
        assert any(m.oid == "f:q:0" for m in result.matches)


class TestAvailabilityAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
        st.floats(min_value=0.5, max_value=0.999999, allow_nan=False),
    )
    def test_replicas_needed_meets_target(self, failure_prob, target):
        k = replicas_needed(failure_prob, target)
        assert k >= 1
        assert partition_availability(k, failure_prob) >= target - 1e-9
        if k > 1:
            # Minimality: one replica fewer must miss the target.
            assert partition_availability(k - 1, failure_prob) < target + 1e-9

    def test_boundary_probabilities(self):
        # Certain survival: one replica suffices at any target.
        assert replicas_needed(0.0, 0.999999) == 1
        assert partition_availability(1, 0.0) == 1.0
        # Certain failure: no availability at all.
        assert partition_availability(3, 1.0) == 0.0
