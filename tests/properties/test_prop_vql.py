"""Property-based tests for the VQL language layer.

The central round-trip: rendering any valid AST with ``str()`` and
re-parsing it yields the same AST — so the printer and the parser agree
on the whole language, not just the examples.
"""

from hypothesis import given, settings, strategies as st

from repro.query.ast import (
    CompareOp,
    Comparison,
    Const,
    DistCall,
    OrderBy,
    SelectQuery,
    SortDirection,
    TriplePattern,
    Var,
)
from repro.query.parser import parse

var_names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
idents = st.text(alphabet="abcdefgh", min_size=1, max_size=8).map(
    lambda s: "ns:" + s
)
string_literals = st.text(alphabet="abcdefgh '", max_size=10)
numbers = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ).map(lambda f: round(f, 3)),
)

variables = var_names.map(Var)
constants = st.one_of(string_literals, numbers, idents).map(Const)
terms = st.one_of(variables, constants)


@st.composite
def patterns(draw):
    return TriplePattern(
        subject=draw(variables),
        predicate=draw(st.one_of(variables, idents.map(Const))),
        object=draw(terms),
    )


@st.composite
def queries(draw):
    pattern_list = draw(st.lists(patterns(), min_size=1, max_size=4))
    bound = set()
    for pattern in pattern_list:
        bound |= pattern.variables()
    bound_vars = sorted(bound)
    if not bound_vars:
        # Ensure at least one variable exists to select.
        pattern_list[0] = TriplePattern(
            Var("o"), pattern_list[0].predicate, pattern_list[0].object
        )
        bound_vars = ["o"]
    select = tuple(
        Var(name)
        for name in draw(
            st.lists(
                st.sampled_from(bound_vars), min_size=1, max_size=3, unique=True
            )
        )
    )
    filters = []
    if draw(st.booleans()):
        variable = Var(draw(st.sampled_from(bound_vars)))
        op = draw(st.sampled_from(list(CompareOp)))
        if draw(st.booleans()):
            left = DistCall(variable, draw(constants))
            right = Const(draw(st.integers(min_value=0, max_value=9)))
        else:
            left = variable
            right = draw(constants)
        filters.append(Comparison(left, op, right))
    order_by = None
    if draw(st.booleans()):
        variable = Var(draw(st.sampled_from(bound_vars)))
        if draw(st.booleans()):
            order_by = OrderBy(variable, nn_target=Const(draw(string_literals)))
        else:
            order_by = OrderBy(
                variable, draw(st.sampled_from(list(SortDirection)))
            )
    limit = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=99)))
    offset = draw(st.integers(min_value=0, max_value=9)) if limit else 0
    return SelectQuery(
        select=select,
        patterns=tuple(pattern_list),
        filters=tuple(filters),
        order_by=order_by,
        limit=limit,
        offset=offset,
    )


class TestRoundTrip:
    @settings(max_examples=200)
    @given(queries())
    def test_str_parse_round_trip(self, query):
        reparsed = parse(str(query))
        assert reparsed == query

    @settings(max_examples=100)
    @given(queries())
    def test_round_trip_is_stable(self, query):
        once = parse(str(query))
        twice = parse(str(once))
        assert once == twice
