"""Model-based property tests for the per-peer datastore.

The store must behave exactly like a sorted multimap; the model is a
plain list of ``(key, entry)`` pairs that every operation is checked
against.
"""

from hypothesis import given, settings, strategies as st

from repro.storage.datastore import LocalDataStore
from repro.storage.indexing import EntryKind, IndexEntry
from repro.storage.triple import Triple

KEY_BITS = 8

keys = st.integers(min_value=0, max_value=(1 << KEY_BITS) - 1).map(
    lambda v: format(v, f"0{KEY_BITS}b")
)


def entry_for(key: str, serial: int) -> IndexEntry:
    return IndexEntry(
        key=key,
        kind=EntryKind.ATTR_VALUE,
        triple=Triple(f"x:{serial:04d}", "a", serial),
    )


@st.composite
def stores(draw):
    """A store plus its reference model."""
    key_list = draw(st.lists(keys, max_size=40))
    entries = [entry_for(key, i) for i, key in enumerate(key_list)]
    store = LocalDataStore()
    bulk_split = draw(st.integers(min_value=0, max_value=len(entries)))
    store.add_bulk(entries[:bulk_split])
    for entry in entries[bulk_split:]:
        store.add(entry)
    return store, entries


class TestModelEquivalence:
    @settings(max_examples=100)
    @given(stores())
    def test_iteration_is_key_sorted_and_complete(self, pair):
        store, entries = pair
        assert len(store) == len(entries)
        iterated = [e.key for e in store]
        assert iterated == sorted(e.key for e in entries)

    @settings(max_examples=100)
    @given(stores(), keys)
    def test_lookup_matches_model(self, pair, probe):
        store, entries = pair
        expected = sorted(
            (e.triple.oid for e in entries if e.key == probe)
        )
        got = sorted(e.triple.oid for e in store.lookup(probe))
        assert got == expected

    @settings(max_examples=100)
    @given(stores(), st.integers(min_value=0, max_value=KEY_BITS))
    def test_prefix_scan_matches_model(self, pair, width):
        store, entries = pair
        if not entries:
            return
        prefix = entries[0].key[:width]
        expected = sorted(
            e.triple.oid for e in entries if e.key.startswith(prefix)
        )
        got = sorted(e.triple.oid for e in store.prefix_scan(prefix))
        assert got == expected

    @settings(max_examples=100)
    @given(stores(), keys, keys)
    def test_range_scan_matches_model(self, pair, a, b):
        store, entries = pair
        lo, hi = min(a, b), max(a, b)
        expected = sorted(
            e.triple.oid for e in entries if lo <= e.key <= hi
        )
        got = sorted(e.triple.oid for e in store.range_scan(lo, hi))
        assert got == expected

    @settings(max_examples=100)
    @given(stores())
    def test_remove_each_entry_once(self, pair):
        store, entries = pair
        for entry in entries:
            assert store.remove(entry)
        assert len(store) == 0
        if entries:
            assert not store.remove(entries[0])

    @settings(max_examples=100)
    @given(stores(), st.integers(min_value=0, max_value=KEY_BITS))
    def test_count_prefix_matches_scan(self, pair, width):
        store, entries = pair
        if not entries:
            return
        prefix = entries[-1].key[:width]
        assert store.count_prefix(prefix) == len(store.prefix_scan(prefix))
