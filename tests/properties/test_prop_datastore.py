"""Model-based property tests for the per-peer datastore.

The store must behave exactly like a sorted multimap; the model is a
plain list of ``(key, entry)`` pairs that every operation is checked
against.
"""

from hypothesis import given, settings, strategies as st

from repro.storage.datastore import LocalDataStore
from repro.storage.indexing import EntryKind, IndexEntry
from repro.storage.triple import Triple

KEY_BITS = 8

keys = st.integers(min_value=0, max_value=(1 << KEY_BITS) - 1).map(
    lambda v: format(v, f"0{KEY_BITS}b")
)


def entry_for(key: str, serial: int) -> IndexEntry:
    return IndexEntry(
        key=key,
        kind=EntryKind.ATTR_VALUE,
        triple=Triple(f"x:{serial:04d}", "a", serial),
    )


@st.composite
def stores(draw):
    """A store plus its reference model."""
    key_list = draw(st.lists(keys, max_size=40))
    entries = [entry_for(key, i) for i, key in enumerate(key_list)]
    store = LocalDataStore()
    bulk_split = draw(st.integers(min_value=0, max_value=len(entries)))
    store.add_bulk(entries[:bulk_split])
    for entry in entries[bulk_split:]:
        store.add(entry)
    return store, entries


class TestModelEquivalence:
    @settings(max_examples=100)
    @given(stores())
    def test_iteration_is_key_sorted_and_complete(self, pair):
        store, entries = pair
        assert len(store) == len(entries)
        iterated = [e.key for e in store]
        assert iterated == sorted(e.key for e in entries)

    @settings(max_examples=100)
    @given(stores(), keys)
    def test_lookup_matches_model(self, pair, probe):
        store, entries = pair
        expected = sorted(
            (e.triple.oid for e in entries if e.key == probe)
        )
        got = sorted(e.triple.oid for e in store.lookup(probe))
        assert got == expected

    @settings(max_examples=100)
    @given(stores(), st.integers(min_value=0, max_value=KEY_BITS))
    def test_prefix_scan_matches_model(self, pair, width):
        store, entries = pair
        if not entries:
            return
        prefix = entries[0].key[:width]
        expected = sorted(
            e.triple.oid for e in entries if e.key.startswith(prefix)
        )
        got = sorted(e.triple.oid for e in store.prefix_scan(prefix))
        assert got == expected

    @settings(max_examples=100)
    @given(stores(), keys, keys)
    def test_range_scan_matches_model(self, pair, a, b):
        store, entries = pair
        lo, hi = min(a, b), max(a, b)
        expected = sorted(
            e.triple.oid for e in entries if lo <= e.key <= hi
        )
        got = sorted(e.triple.oid for e in store.range_scan(lo, hi))
        assert got == expected

    @settings(max_examples=100)
    @given(stores())
    def test_remove_each_entry_once(self, pair):
        store, entries = pair
        for entry in entries:
            assert store.remove(entry)
        assert len(store) == 0
        if entries:
            assert not store.remove(entries[0])

    @settings(max_examples=100)
    @given(stores(), st.integers(min_value=0, max_value=KEY_BITS))
    def test_count_prefix_matches_scan(self, pair, width):
        store, entries = pair
        if not entries:
            return
        prefix = entries[-1].key[:width]
        assert store.count_prefix(prefix) == len(store.prefix_scan(prefix))


class TestSecondaryIndexEquivalence:
    """The lazy secondary indexes vs. the index-free scan paths.

    ``stores()`` already interleaves bulk loads (deferred sort, dirty
    flag) with incremental inserts, so these properties cover the
    dirty-flag/bulk-load interaction the indexes must survive.
    """

    @settings(max_examples=100)
    @given(stores(), keys)
    def test_indexed_lookup_matches_scan(self, pair, probe):
        store, entries = pair
        assert store.lookup(probe) == store.lookup_scan(probe)
        if entries:
            assert store.lookup(entries[0].key) == store.lookup_scan(
                entries[0].key
            )

    @settings(max_examples=100)
    @given(stores())
    def test_kind_view_matches_scan(self, pair):
        store, __ = pair
        assert list(store.entries_of_kind(EntryKind.ATTR_VALUE)) == list(
            store.entries_of_kind_scan(EntryKind.ATTR_VALUE)
        )
        assert list(store.entries_of_kind(EntryKind.OID)) == list(
            store.entries_of_kind_scan(EntryKind.OID)
        )

    @settings(max_examples=100)
    @given(stores(), st.lists(keys, max_size=5))
    def test_indexes_survive_mutation_cycles(self, pair, extra_keys):
        """Warm indexes, mutate every way, and re-check against scans."""
        store, entries = pair
        if entries:
            store.lookup(entries[0].key)  # build postings
            list(store.entries_of_kind(EntryKind.ATTR_VALUE))
            store.payload_bytes()
        serial = len(entries)
        added = []
        for i, key in enumerate(extra_keys):
            entry = entry_for(key, serial + i)
            added.append(entry)
            if i % 2:
                store.add(entry)  # incremental: indexes updated in place
            else:
                store.add_bulk([entry])  # bulk: dirty flag + invalidation
        for entry in added:
            assert entry in store.lookup(entry.key)
            assert store.lookup(entry.key) == store.lookup_scan(entry.key)
        if entries:
            victim = entries[0]
            assert store.remove(victim)
            assert victim not in store.lookup(victim.key)
            assert store.lookup(victim.key) == store.lookup_scan(victim.key)
        assert store.payload_bytes() == sum(
            e.payload_size() for e in store
        )

    @settings(max_examples=100)
    @given(stores())
    def test_payload_total_tracks_mutations(self, pair):
        store, entries = pair
        expected = sum(e.payload_size() for e in entries)
        assert store.payload_bytes() == expected
        assert store.total_payload_bytes() == expected
        for entry in entries[: len(entries) // 2]:
            store.remove(entry)
            expected -= entry.payload_size()
            assert store.payload_bytes() == expected
