"""Property-based tests: edit distance is a metric, banded DP is exact."""

from hypothesis import given, settings, strategies as st

from repro.similarity.edit_distance import edit_distance, edit_distance_within

words = st.text(alphabet="abcdef", max_size=12)


class TestMetricAxioms:
    @given(words)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(words, words)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(words, words)
    def test_positivity(self, a, b):
        distance = edit_distance(a, b)
        assert distance >= 0
        assert (distance == 0) == (a == b)

    @settings(max_examples=150)
    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(words, words)
    def test_length_lower_bound(self, a, b):
        assert edit_distance(a, b) >= abs(len(a) - len(b))

    @given(words, words)
    def test_length_upper_bound(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))


class TestBandedAgreement:
    @given(words, words, st.integers(min_value=0, max_value=15))
    def test_banded_matches_exact(self, a, b, d):
        exact = edit_distance(a, b)
        banded = edit_distance_within(a, b, d)
        if exact <= d:
            assert banded == exact
        else:
            assert banded == d + 1

    @given(words, st.integers(min_value=0, max_value=5))
    def test_banded_identity(self, a, d):
        assert edit_distance_within(a, a, d) == 0
