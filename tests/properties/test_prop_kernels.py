"""Property tests: the Myers kernel is equivalent to the reference DP.

The kernel contract mirrors the verifier's: for every ``(a, b, d)``,
``myers_within`` must return exactly what ``edit_distance_within``
returns (which is itself property-tested against brute-force
``edit_distance``).  Both bit-parallel variants are covered — the
single-block path (queries <= 64 chars) and the multi-block carry path —
over unicode alphabets, empty strings, ``d = 0`` and lengths straddling
the 64-character word boundary.  The batch suite then pins the
forced-kernel invariant the whole PR rests on: every kernel produces the
identical ``distances()`` dict.
"""

from hypothesis import given, settings, strategies as st

from repro.similarity.edit_distance import edit_distance, edit_distance_within
from repro.similarity.kernels import (
    MyersKernel,
    MyersQuery,
    ReferenceKernel,
    myers_within,
    numpy_available,
)
from repro.similarity.verify import BatchVerifier

# Mixed-script alphabet: ASCII, accents, CJK, an astral-plane emoji.
unicode_alphabet = "abz éß日本🙂 "
short_texts = st.text(alphabet=unicode_alphabet, max_size=12)
#: Long texts cross the 64-char block boundary (single- vs multi-block).
long_texts = st.text(alphabet="abz ", min_size=50, max_size=140)
distances = st.integers(min_value=0, max_value=5)


def batch_kernels():
    kernels = [ReferenceKernel(), MyersKernel(prefilter=False)]
    if numpy_available():
        kernels.append(MyersKernel(prefilter=True))
    return kernels


class TestMyersEquivalence:
    @settings(max_examples=400)
    @given(short_texts, short_texts, distances)
    def test_short_matches_banded_dp(self, a, b, d):
        assert myers_within(a, b, d) == edit_distance_within(a, b, d)

    @settings(max_examples=150)
    @given(long_texts, long_texts, distances)
    def test_multiblock_matches_banded_dp(self, a, b, d):
        assert myers_within(a, b, d) == edit_distance_within(a, b, d)

    @settings(max_examples=150)
    @given(short_texts, short_texts)
    def test_exact_value_matches_brute_force(self, a, b):
        true = edit_distance(a, b)
        assert myers_within(a, b, true) == true
        if true > 0:
            # One below the true distance must saturate to the sentinel.
            assert myers_within(a, b, true - 1) == true

    @settings(max_examples=150)
    @given(short_texts, st.lists(short_texts, max_size=10), distances)
    def test_mask_state_is_reusable(self, query, candidates, d):
        state = MyersQuery(query)
        for candidate in candidates:
            assert state.within(candidate, d) == edit_distance_within(
                query, candidate, d
            )

    @settings(max_examples=100)
    @given(st.text(alphabet="ab", min_size=60, max_size=70), distances)
    def test_word_boundary_identity(self, a, d):
        # Probes clustered exactly around the 64-char block edge.
        for b in (a, a[:-1], a + "b", a[:32] + "z" + a[32:]):
            assert myers_within(a, b, d) == edit_distance_within(a, b, d)


class TestForcedKernelBatchIdentity:
    @settings(max_examples=200)
    @given(short_texts, st.lists(short_texts, max_size=20), distances)
    def test_distances_identical_across_kernels(self, query, candidates, d):
        results = [
            BatchVerifier(query, d, kernel=kernel).distances(candidates)
            for kernel in batch_kernels()
        ]
        for other in results[1:]:
            assert other == results[0]

    @settings(max_examples=60)
    @given(long_texts, st.lists(long_texts, min_size=1, max_size=40), distances)
    def test_multiblock_batches_identical_across_kernels(
        self, query, candidates, d
    ):
        # Batches large enough to trip the shared-prefix fallback of the
        # multi-block Myers kernel still agree with the reference.
        results = [
            BatchVerifier(query, d, kernel=kernel).distances(candidates)
            for kernel in batch_kernels()
        ]
        for other in results[1:]:
            assert other == results[0]

    @settings(max_examples=100)
    @given(short_texts, st.lists(short_texts, min_size=1, max_size=12), distances)
    def test_interleaved_singles_and_batches_per_kernel(
        self, query, candidates, d
    ):
        for kernel in batch_kernels():
            verifier = BatchVerifier(query, d, kernel=kernel)
            half = len(candidates) // 2
            for candidate in candidates[:half]:
                assert verifier.distance(candidate) == edit_distance_within(
                    query, candidate, d
                )
            result = verifier.distances(candidates)
            for candidate in candidates:
                assert result[candidate] == edit_distance_within(
                    query, candidate, d
                )
