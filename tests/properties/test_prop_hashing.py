"""Property-based tests: hash monotonicity and key-space closure."""

from hypothesis import given, strategies as st

from repro.overlay.hashing import (
    NumericKeyCodec,
    OrderPreservingStringHash,
    float_to_ordered_int,
    uniform_key,
)

simple_text = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz 0123456789", max_size=20
)
finite_floats = st.floats(allow_nan=False, allow_infinity=False)


class TestStringHash:
    @given(simple_text, simple_text)
    def test_monotone(self, a, b):
        hasher = OrderPreservingStringHash(32)
        if a < b:
            assert hasher.key_value(a) <= hasher.key_value(b)
        elif a > b:
            assert hasher.key_value(a) >= hasher.key_value(b)
        else:
            assert hasher.key_value(a) == hasher.key_value(b)

    @given(simple_text)
    def test_key_in_range(self, text):
        hasher = OrderPreservingStringHash(24)
        value = hasher.key_value(text)
        assert 0 <= value < (1 << 24)
        assert len(hasher.key(text)) == 24

    @given(st.text(alphabet="abcdef", min_size=1, max_size=8))
    def test_strict_on_short_distinct_strings(self, a):
        # Short strings fit entirely in the bit budget: extending a string
        # strictly increases its key.
        hasher = OrderPreservingStringHash(64)
        assert hasher.key_value(a) < hasher.key_value(a + "a")


class TestNumericHash:
    @given(finite_floats, finite_floats)
    def test_ordered_int_monotone(self, a, b):
        if a < b:
            assert float_to_ordered_int(a) < float_to_ordered_int(b)
        elif a == b:
            assert float_to_ordered_int(a) == float_to_ordered_int(b)

    @given(finite_floats)
    def test_codec_range_contains_point(self, x):
        codec = NumericKeyCodec(24)
        lo, hi = codec.range_keys(x, x)
        assert lo == hi == codec.key_value(x)

    @given(finite_floats, finite_floats, finite_floats)
    def test_value_inside_interval_maps_inside_key_range(self, a, b, c):
        lo_v, hi_v = min(a, b), max(a, b)
        if not lo_v <= c <= hi_v:
            return
        codec = NumericKeyCodec(24)
        lo, hi = codec.range_keys(lo_v, hi_v)
        assert lo <= codec.key_value(c) <= hi


class TestUniformKey:
    @given(st.text(min_size=1, max_size=30), st.integers(min_value=4, max_value=64))
    def test_width_and_alphabet(self, text, bits):
        key = uniform_key(text, bits)
        assert len(key) == bits
        assert set(key) <= {"0", "1"}

    @given(st.text(min_size=1, max_size=30))
    def test_deterministic(self, text):
        assert uniform_key(text, 32) == uniform_key(text, 32)
