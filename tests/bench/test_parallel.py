"""Parallel execution properties: sweeps, fan-out, env flags, failures.

The standing invariant under test: parallelism (worker processes for
sweep cells, thread fan-out for per-peer work inside a query) changes
wall-clock numbers *only* — every measured message/byte series is
bit-identical to the serial reference path.
"""

import pickle

import pytest

from repro.core.config import (
    ConfigError,
    SimilarityStrategy,
    StoreConfig,
    env_flag,
)
from repro.core.stats import QueryStats
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples
from repro.engine import QueryEngine
from repro.overlay.fanout import FanOutExecutor
from repro.overlay.faults import FaultPlan
from repro.overlay.messages import MessageTracer, MessageType
from repro.overlay.network import PGridNetwork
from repro.bench.experiment import (
    ALL_WITH_ADAPTIVE,
    PreparedDataset,
    run_cell,
)
from repro.bench.sweep import (
    ParallelSweepRunner,
    SweepCellError,
    SweepJob,
    full_scale,
    run_sweep_job,
    sweep,
    sweep_check,
)


@pytest.fixture(scope="module")
def corpus():
    return bible_triples(250, seed=3)


@pytest.fixture(scope="module")
def strings(corpus):
    return [str(t.value) for t in corpus]


def stats_key(stats: QueryStats) -> tuple:
    """Everything a strategy's series is made of, comparable."""
    return (
        stats.queries,
        stats.messages,
        stats.payload_bytes,
        tuple(sorted(stats.by_type.items())),
        tuple(sorted(stats.by_phase.items())),
    )


class TestEnvFlagNormalization:
    """REPRO_FULL_SCALE=False must not silently enable paper scale."""

    @pytest.mark.parametrize(
        "raw", ["0", "false", "False", "FALSE", "no", "No", "off", " false "]
    )
    def test_false_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FULL_SCALE", raw)
        assert not full_scale()
        monkeypatch.setenv("REPRO_SWEEP_CHECK", raw)
        assert not sweep_check()

    @pytest.mark.parametrize(
        "raw", ["1", "true", "True", "TRUE", "yes", "on", " ON "]
    )
    def test_true_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FULL_SCALE", raw)
        assert full_scale()

    def test_unset_and_empty_are_false(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert not full_scale()
        monkeypatch.setenv("REPRO_FULL_SCALE", "")
        assert not full_scale()

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "definitely")
        with pytest.raises(ConfigError, match="REPRO_FULL_SCALE"):
            full_scale()

    def test_env_flag_default(self, monkeypatch):
        monkeypatch.delenv("SOME_UNSET_FLAG", raising=False)
        assert env_flag("SOME_UNSET_FLAG") is False
        assert env_flag("SOME_UNSET_FLAG", default=True) is True


class TestBuildSecondsFallback:
    """A builder without reports must still yield a measured build time."""

    def test_reportless_builder_measures_fallback(self, corpus, strings):
        config = StoreConfig(seed=1)
        prepared = PreparedDataset.prepare(corpus, config)

        class ReportlessBuilder:
            last_report = None

            def build(self, n_peers):
                return prepared.build_network(n_peers)

        cell = run_cell(
            (), TEXT_ATTRIBUTE, strings, 16, config,
            repetitions=1,
            strategies=(SimilarityStrategy.QSAMPLE,),
            prepared=prepared,
            builder=ReportlessBuilder(),
        )
        assert 0 < cell.build_seconds <= cell.wall_seconds


class TestParallelSweep:
    """jobs=2 must reproduce the serial sweep's series byte for byte."""

    PEERS = (16, 32, 48)

    @pytest.fixture(scope="class")
    def job(self, corpus, strings):
        return SweepJob.from_dataset(
            "bible", corpus, TEXT_ATTRIBUTE, strings,
            peer_counts=self.PEERS,
            config=StoreConfig(seed=1),
            repetitions=1,
            strategies=ALL_WITH_ADAPTIVE,
        )

    @pytest.fixture(scope="class")
    def serial(self, job):
        return run_sweep_job(job)

    @pytest.fixture(scope="class")
    def parallel(self, job):
        return ParallelSweepRunner(2).run([job])[0]

    def test_job_is_picklable(self, job):
        clone = pickle.loads(pickle.dumps(job))
        assert clone.dataset == job.dataset
        assert clone.peer_counts == job.peer_counts
        assert len(clone.prepared.entries) == len(job.prepared.entries)

    def test_cells_in_peer_count_order(self, parallel):
        assert parallel.peer_counts() == list(self.PEERS)

    def test_series_bit_identical(self, serial, parallel):
        for strategy in ALL_WITH_ADAPTIVE:
            assert parallel.message_series(strategy) == (
                serial.message_series(strategy)
            ), strategy
            assert parallel.megabyte_series(strategy) == (
                serial.megabyte_series(strategy)
            ), strategy

    def test_full_stats_identical_per_cell(self, serial, parallel):
        for ser_cell, par_cell in zip(serial.cells, parallel.cells):
            assert set(ser_cell.by_strategy) == set(par_cell.by_strategy)
            for strategy in ser_cell.by_strategy:
                assert stats_key(par_cell.by_strategy[strategy]) == (
                    stats_key(ser_cell.by_strategy[strategy])
                ), (ser_cell.n_peers, strategy)
            assert par_cell.total_entries == ser_cell.total_entries
            assert par_cell.stored_payload_bytes == (
                ser_cell.stored_payload_bytes
            )
            assert par_cell.adaptive_stats_messages == (
                ser_cell.adaptive_stats_messages
            )
            assert par_cell.adaptive_choices == ser_cell.adaptive_choices

    def test_wall_seconds_recorded(self, serial, parallel):
        assert serial.wall_seconds > 0
        assert parallel.wall_seconds > 0

    def test_sweep_facade_dispatches_jobs(self, corpus, strings, serial):
        via_facade = sweep(
            "bible", corpus, TEXT_ATTRIBUTE, strings,
            peer_counts=self.PEERS, config=StoreConfig(seed=1),
            repetitions=1, strategies=ALL_WITH_ADAPTIVE, jobs=2,
        )
        for strategy in ALL_WITH_ADAPTIVE:
            assert via_facade.message_series(strategy) == (
                serial.message_series(strategy)
            )

    def test_runner_rejects_single_job_count(self):
        with pytest.raises(ValueError, match="jobs >= 2"):
            ParallelSweepRunner(1)


class CrashingSweepJob(SweepJob):
    """Crashes deterministically at one peer count.

    Module-level so worker processes can unpickle it.  An injected crash
    (rather than a marginal ``key_bits`` that can't address the trie)
    keeps the failing cell independent of hash-seed-sensitive workload
    details — only the loud-failure plumbing is under test here.
    """

    CRASH_PEERS = 512

    def _run_cell(self, n_peers, builder):
        if n_peers == self.CRASH_PEERS:
            raise RuntimeError("injected cell crash")
        return super()._run_cell(n_peers, builder)


class TestWorkerFailure:
    """A crashing cell must fail the sweep loudly, traceback included."""

    def failing_job(self, corpus, strings):
        return CrashingSweepJob.from_dataset(
            "bible", corpus, TEXT_ATTRIBUTE, strings,
            peer_counts=(8, 512),
            config=StoreConfig(seed=1),
            repetitions=1,
            strategies=(SimilarityStrategy.QSAMPLE,),
        )

    def test_parallel_failure_is_loud_and_attributed(self, corpus, strings):
        job = self.failing_job(corpus, strings)
        with pytest.raises(SweepCellError) as excinfo:
            ParallelSweepRunner(2).run([job])
        error = excinfo.value
        assert error.dataset == "bible"
        assert error.n_peers == 512
        # The original worker traceback must survive the process hop.
        assert "Traceback" in error.worker_traceback
        assert "injected cell crash" in error.worker_traceback
        assert "Traceback" in str(error)

    def test_error_pickles_round_trip(self):
        error = SweepCellError("bible", 512, "Traceback: boom")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.dataset == "bible"
        assert clone.n_peers == 512
        assert clone.worker_traceback == "Traceback: boom"


class TestFanOutExecutor:
    def test_min_workers_enforced(self):
        with pytest.raises(ValueError):
            FanOutExecutor(1)

    def test_map_ordered_preserves_order(self):
        with FanOutExecutor(4) as fanout:
            assert fanout.map_ordered(lambda x: x * x, range(20)) == [
                x * x for x in range(20)
            ]

    def test_map_ordered_propagates_errors(self):
        def boom(x):
            raise RuntimeError(f"unit {x}")

        with FanOutExecutor(2) as fanout:
            with pytest.raises(RuntimeError, match="unit"):
                fanout.map_ordered(boom, range(4))

    def test_run_traced_merges_in_submission_order(self):
        tracer = MessageTracer(record_log=True)
        reference = MessageTracer(record_log=True)
        for i in range(6):
            reference.send(MessageType.BROADCAST, 0, i, i * 10, phase="p")

        def task_for(i):
            def task(scratch):
                scratch.send(MessageType.BROADCAST, 0, i, i * 10, phase="p")
                return i
            return task

        with FanOutExecutor(3) as fanout:
            results = fanout.run_traced(tracer, [task_for(i) for i in range(6)])
        assert results == list(range(6))
        assert tracer.log == reference.log
        assert tracer.message_count == reference.message_count
        assert tracer.payload_bytes == reference.payload_bytes

    def test_run_traced_failure_leaves_tracer_unchanged(self):
        tracer = MessageTracer()

        def bad(scratch):
            scratch.send(MessageType.BROADCAST, 0, 1, 5, phase="p")
            raise RuntimeError("charged then failed")

        with FanOutExecutor(2) as fanout:
            with pytest.raises(RuntimeError):
                fanout.run_traced(tracer, [bad, bad])
        assert tracer.message_count == 0
        assert tracer.payload_bytes == 0


class TestEngineFanOut:
    """Intra-query fan-out: identical series, identical verbose logs."""

    def build_engine(self, corpus, fanout, record_log=False):
        config = StoreConfig(seed=1)
        prepared = PreparedDataset.prepare(corpus, config)
        network = PGridNetwork(
            48, config, sample_keys=prepared.sample_keys,
            tracer=MessageTracer(record_log=record_log),
        )
        network.place_entries(prepared.entries)
        return QueryEngine(network, parallel_fanout=fanout)

    def run_queries(self, engine, install_noop_faults=False):
        if install_noop_faults:
            engine.install_faults(FaultPlan.none())
        observed = []
        for strategy in ("qgram", "qsample", "naive"):
            engine.similar("beginning", TEXT_ATTRIBUTE, 2, strategy=strategy)
            cost = engine.last_cost()
            observed.append(
                (
                    strategy,
                    cost.messages,
                    cost.payload_bytes,
                    tuple(sorted(cost.by_type.items())),
                    tuple(sorted(cost.by_phase.items())),
                )
            )
        return observed

    @pytest.mark.parametrize("noop_faults", [False, True])
    def test_costs_identical_to_serial(self, corpus, noop_faults):
        with self.build_engine(corpus, None) as serial_engine:
            serial = self.run_queries(serial_engine, noop_faults)
        with self.build_engine(corpus, 3) as fanned_engine:
            assert fanned_engine.fanout is not None
            fanned = self.run_queries(fanned_engine, noop_faults)
        assert fanned == serial

    def test_verbose_logs_identical_to_serial(self, corpus):
        """Per-message logs (sender, receiver, order) match exactly."""
        with self.build_engine(corpus, None, record_log=True) as serial_engine:
            self.run_queries(serial_engine)
            serial_log = list(serial_engine.network.tracer.log)
        with self.build_engine(corpus, 3, record_log=True) as fanned_engine:
            self.run_queries(fanned_engine)
            fanned_log = list(fanned_engine.network.tracer.log)
        assert fanned_log == serial_log

    def test_matches_identical_to_serial(self, corpus):
        with self.build_engine(corpus, None) as serial_engine:
            serial = serial_engine.similar(
                "beginning", TEXT_ATTRIBUTE, 2, strategy="naive"
            )
        with self.build_engine(corpus, 4) as fanned_engine:
            fanned = fanned_engine.similar(
                "beginning", TEXT_ATTRIBUTE, 2, strategy="naive"
            )
        assert [(m.oid, m.distance) for m in fanned.matches] == (
            [(m.oid, m.distance) for m in serial.matches]
        )

    def test_cell_with_fanout_identical(self, corpus, strings):
        serial = run_cell(
            corpus, TEXT_ATTRIBUTE, strings, 32,
            StoreConfig(seed=1), repetitions=1,
            strategies=ALL_WITH_ADAPTIVE,
        )
        fanned = run_cell(
            corpus, TEXT_ATTRIBUTE, strings, 32,
            StoreConfig(seed=1), repetitions=1,
            strategies=ALL_WITH_ADAPTIVE, parallel_fanout=3,
        )
        for strategy in ALL_WITH_ADAPTIVE:
            assert stats_key(fanned.by_strategy[strategy]) == (
                stats_key(serial.by_strategy[strategy])
            ), strategy
