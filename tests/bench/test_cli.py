"""Unit tests for the ``python -m repro.bench`` CLI."""


import pytest

from repro.bench.cli import main


class TestCli:
    def test_single_panel_tiny_run(self, capsys):
        status = main(
            [
                "--figure", "fig1a",
                "--peers", "16", "64",
                "--words", "150",
                "--repetitions", "1",
            ]
        )
        captured = capsys.readouterr()
        assert "Figure 1(a)" in captured.out
        assert "qsamples" in captured.out
        assert status in (0, 1)  # shape checks may be noisy at tiny scale

    def test_titles_panel(self, capsys):
        main(
            [
                "--figure", "fig1d",
                "--peers", "16",
                "--titles", "80",
                "--repetitions", "1",
            ]
        )
        captured = capsys.readouterr()
        assert "Figure 1(d)" in captured.out
        assert "MB" in captured.out

    def test_csv_output(self, tmp_path, capsys):
        main(
            [
                "--figure", "fig1a",
                "--peers", "16",
                "--words", "100",
                "--repetitions", "1",
                "--csv-dir", str(tmp_path),
            ]
        )
        capsys.readouterr()
        csv_path = tmp_path / "bible.csv"
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header == "dataset,peers,strategy,messages,megabytes"

    def test_json_baselines(self, tmp_path, capsys, monkeypatch):
        import json

        # Keep the micro suite fast inside the test run.
        import repro.bench.micro as micro

        monkeypatch.setattr(micro, "MICRO_WORDS", 120)
        monkeypatch.setattr(micro, "COST_MODEL_WORDS", 80)
        monkeypatch.setattr(micro, "COST_MODEL_PEERS", 16)
        monkeypatch.setattr(micro, "COST_MODEL_QUERIES_PER_D", 1)
        monkeypatch.setattr(
            micro, "_time_op", lambda op, **kw: (op() or True)
            and {"seconds_per_call": 0.0, "best_seconds_per_call": 1e-9, "calls": 1},
        )
        status = main(
            [
                "--figure", "fig1a",
                "--peers", "16",
                "--words", "100",
                "--repetitions", "1",
                "--json",
                "--json-dir", str(tmp_path),
                "--skip-shape-check",
            ]
        )
        capsys.readouterr()
        assert status == 0
        fig1 = json.loads((tmp_path / "BENCH_fig1.json").read_text())
        assert fig1["schema"] == "repro-bench-fig1/v4"
        assert fig1["datasets"]["bible"]["sweep_seconds"] > 0
        assert fig1["scale"]["jobs"] == 1
        assert fig1["scale"]["fanout"] == 0
        cells = fig1["datasets"]["bible"]["cells"]
        assert cells[0]["peers"] == 16
        assert cells[0]["total_entries"] > 0
        assert cells[0]["build_seconds"] >= 0
        assert "naive_sampled" not in cells[0]  # exact by default
        assert fig1["scale"]["naive_sample_rate"] == 0.0
        assert fig1["scale"]["adaptive"] is True
        assert set(cells[0]["strategies"]) == {
            "qsamples", "qgrams", "strings", "adaptive",
        }
        assert all("messages" in s for s in cells[0]["strategies"].values())
        assert cells[0]["adaptive_stats_messages"] > 0
        assert sum(cells[0]["adaptive_choices"].values()) > 0
        micro_doc = json.loads((tmp_path / "BENCH_micro.json").read_text())
        assert micro_doc["schema"] == "repro-bench-micro/v3"
        assert "gram_lookup_indexed" in micro_doc["ops"]
        assert "verify_batched_myers" in micro_doc["ops"]
        assert "verify_batched_vs_single" in micro_doc["speedups"]
        assert "verify_myers_vs_batched" in micro_doc["speedups"]
        assert micro_doc["kernels"]["batched_pair"]["verify_batched"] == (
            "reference"
        )
        accuracy = micro_doc["cost_model"]
        assert set(accuracy["per_strategy"]) == {
            "qsamples", "qgrams", "strings",
        }
        assert 0.0 <= accuracy["chosen_within_2x_of_best"] <= 1.0

    def test_skip_shape_check_masks_findings(self, capsys):
        # Tiny runs often violate the qualitative shapes; the flag must
        # turn findings into warnings instead of a failing status.
        status = main(
            [
                "--figure", "fig1a",
                "--peers", "16",
                "--words", "80",
                "--repetitions", "1",
                "--skip-shape-check",
            ]
        )
        capsys.readouterr()
        assert status == 0

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["--figure", "fig9z"])

    def test_full_scale_env_toggle(self, monkeypatch):
        from repro.bench.sweep import full_scale

        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert full_scale()
        monkeypatch.setenv("REPRO_FULL_SCALE", "0")
        assert not full_scale()
        monkeypatch.delenv("REPRO_FULL_SCALE")
        assert not full_scale()
