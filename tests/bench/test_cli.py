"""Unit tests for the ``python -m repro.bench`` CLI."""

import os

import pytest

from repro.bench.cli import main


class TestCli:
    def test_single_panel_tiny_run(self, capsys):
        status = main(
            [
                "--figure", "fig1a",
                "--peers", "16", "64",
                "--words", "150",
                "--repetitions", "1",
            ]
        )
        captured = capsys.readouterr()
        assert "Figure 1(a)" in captured.out
        assert "qsamples" in captured.out
        assert status in (0, 1)  # shape checks may be noisy at tiny scale

    def test_titles_panel(self, capsys):
        main(
            [
                "--figure", "fig1d",
                "--peers", "16",
                "--titles", "80",
                "--repetitions", "1",
            ]
        )
        captured = capsys.readouterr()
        assert "Figure 1(d)" in captured.out
        assert "MB" in captured.out

    def test_csv_output(self, tmp_path, capsys):
        main(
            [
                "--figure", "fig1a",
                "--peers", "16",
                "--words", "100",
                "--repetitions", "1",
                "--csv-dir", str(tmp_path),
            ]
        )
        capsys.readouterr()
        csv_path = tmp_path / "bible.csv"
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header == "dataset,peers,strategy,messages,megabytes"

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["--figure", "fig9z"])

    def test_full_scale_env_toggle(self, monkeypatch):
        from repro.bench.sweep import full_scale

        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert full_scale()
        monkeypatch.setenv("REPRO_FULL_SCALE", "0")
        assert not full_scale()
        monkeypatch.delenv("REPRO_FULL_SCALE")
        assert not full_scale()
