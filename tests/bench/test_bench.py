"""Unit tests for the evaluation harness (workload, cells, reports)."""

import pytest

from repro.core.config import SimilarityStrategy, StoreConfig
from repro.datasets.bible import TEXT_ATTRIBUTE, bible_triples
from repro.query.operators.base import OperatorContext
from repro.bench.experiment import (
    ALL_STRATEGIES,
    ALL_WITH_ADAPTIVE,
    build_network,
    run_cell,
)
from repro.bench.report import PANELS, format_panel, render_csv, shape_check
from repro.bench.sweep import sweep
from repro.bench.workload import (
    JOIN_DISTANCES,
    TOP_N_SIZES,
    QueryKind,
    make_workload,
    run_query,
    run_workload,
)


@pytest.fixture(scope="module")
def corpus():
    return bible_triples(300, seed=3)


@pytest.fixture(scope="module")
def strings(corpus):
    return [str(t.value) for t in corpus]


class TestWorkload:
    def test_mix_composition(self, strings):
        queries = make_workload(strings, n_peers=64, repetitions=4, seed=1)
        assert len(queries) == 24
        top_n = [q for q in queries if q.kind is QueryKind.TOP_N]
        joins = [q for q in queries if q.kind is QueryKind.SIM_JOIN]
        assert sorted({q.parameter for q in top_n}) == list(TOP_N_SIZES)
        assert sorted({q.parameter for q in joins}) == list(JOIN_DISTANCES)

    def test_deterministic(self, strings):
        a = make_workload(strings, 64, repetitions=2, seed=9)
        b = make_workload(strings, 64, repetitions=2, seed=9)
        assert a == b

    def test_search_strings_from_corpus(self, strings):
        queries = make_workload(strings, 64, repetitions=3, seed=2)
        assert all(q.search in set(strings) for q in queries)

    def test_initiators_within_network(self, strings):
        queries = make_workload(strings, 16, repetitions=3, seed=2)
        assert all(0 <= q.initiator_id < 16 for q in queries)

    def test_run_query_charges_messages(self, corpus, strings):
        network = build_network(corpus, 32, StoreConfig(seed=1))
        ctx = OperatorContext(network)
        query = make_workload(strings, 32, repetitions=1, seed=0)[0]
        cost = run_query(ctx, TEXT_ATTRIBUTE, query, SimilarityStrategy.QSAMPLE)
        assert cost.messages > 0

    def test_run_workload_accumulates(self, corpus, strings):
        network = build_network(corpus, 32, StoreConfig(seed=1))
        ctx = OperatorContext(network)
        queries = make_workload(strings, 32, repetitions=1, seed=0)
        stats = run_workload(ctx, TEXT_ATTRIBUTE, queries, SimilarityStrategy.QSAMPLE)
        assert stats.queries == len(queries)
        assert stats.messages > 0


class TestCell:
    def test_all_strategies_present(self, corpus, strings):
        cell = run_cell(
            corpus, TEXT_ATTRIBUTE, strings, 32,
            StoreConfig(seed=1), repetitions=1,
        )
        assert set(cell.by_strategy) == set(ALL_STRATEGIES)
        for stats in cell.by_strategy.values():
            assert stats.messages > 0
        # Build time is one component of the cell's wall clock; a
        # mis-measured (e.g. zeroed-without-measuring) build would
        # break this invariant.
        assert 0 < cell.build_seconds <= cell.wall_seconds

    def test_strategy_subset(self, corpus, strings):
        cell = run_cell(
            corpus, TEXT_ATTRIBUTE, strings, 32, StoreConfig(seed=1),
            repetitions=1, strategies=(SimilarityStrategy.QSAMPLE,),
        )
        assert set(cell.by_strategy) == {SimilarityStrategy.QSAMPLE}


class TestAdaptiveCell:
    @pytest.fixture(scope="class")
    def cells(self, corpus, strings):
        """The same cell with and without the adaptive replay."""
        fixed = run_cell(
            corpus, TEXT_ATTRIBUTE, strings, 32,
            StoreConfig(seed=1), repetitions=1,
        )
        with_adaptive = run_cell(
            corpus, TEXT_ATTRIBUTE, strings, 32,
            StoreConfig(seed=1), repetitions=1,
            strategies=ALL_WITH_ADAPTIVE,
        )
        return fixed, with_adaptive

    def test_fixed_series_unchanged_by_adaptive_replay(self, cells):
        """The adaptive replay is strictly additive (runs last)."""
        fixed, with_adaptive = cells
        for strategy in ALL_STRATEGIES:
            assert with_adaptive.by_strategy[strategy].messages == (
                fixed.by_strategy[strategy].messages
            )
            assert with_adaptive.by_strategy[strategy].payload_bytes == (
                fixed.by_strategy[strategy].payload_bytes
            )

    def test_adaptive_series_recorded(self, cells):
        __, with_adaptive = cells
        adaptive = with_adaptive.by_strategy[SimilarityStrategy.ADAPTIVE]
        assert adaptive.messages > 0
        assert with_adaptive.adaptive_stats_messages > 0
        assert sum(with_adaptive.adaptive_choices.values()) > 0
        assert set(with_adaptive.adaptive_choices) <= {
            "qsamples", "qgrams", "strings",
        }

    def test_adaptive_query_reports_decisions(self, corpus, strings):
        from repro.engine import QueryEngine

        network = build_network(corpus, 32, StoreConfig(seed=1))
        engine = QueryEngine(network)
        ctx = engine.context(strategy=SimilarityStrategy.ADAPTIVE)
        query = make_workload(strings, 32, repetitions=1, seed=0)[0]
        cost = run_query(
            ctx, TEXT_ATTRIBUTE, query, SimilarityStrategy.ADAPTIVE
        )
        assert cost.decisions
        for decision in cost.decisions:
            assert decision.chosen.is_physical
            assert decision.predicted.messages > 0
            assert decision.actual_messages is not None


class TestSweepAndReport:
    @pytest.fixture(scope="class")
    def result(self, corpus, strings):
        return sweep(
            "bible", corpus, TEXT_ATTRIBUTE, strings,
            peer_counts=(16, 64), config=StoreConfig(seed=1), repetitions=1,
        )

    def test_series_lengths(self, result):
        assert result.peer_counts() == [16, 64]
        for strategy in ALL_STRATEGIES:
            assert len(result.message_series(strategy)) == 2
            assert len(result.megabyte_series(strategy)) == 2

    def test_wall_clock_accounting(self, result):
        assert result.wall_seconds > 0
        for cell in result.cells:
            assert 0 < cell.build_seconds <= cell.wall_seconds
        assert sum(c.wall_seconds for c in result.cells) <= result.wall_seconds

    def test_format_panel_contains_all_strategies(self, result):
        text = format_panel("fig1a", result)
        for strategy in ALL_STRATEGIES:
            assert strategy.value in text

    def test_format_volume_panel(self, result):
        text = format_panel("fig1b", result)
        assert "MB" in text

    def test_render_csv(self, result):
        csv_text = render_csv(result)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "dataset,peers,strategy,messages,megabytes"
        assert len(lines) == 1 + 2 * len(ALL_STRATEGIES)

    def test_panels_table_complete(self):
        assert set(PANELS) == {"fig1a", "fig1b", "fig1c", "fig1d"}

    def test_shape_check_returns_list(self, result):
        findings = shape_check(result)
        assert isinstance(findings, list)
