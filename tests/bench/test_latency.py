"""Unit tests for the response-time estimation model."""

import pytest

from repro.core.config import SimilarityStrategy
from repro.query.operators.base import OperatorContext
from repro.query.operators.similar import similar
from repro.bench.latency import LatencyEstimate, LatencyModel, estimate_similar_latency

from tests.conftest import TEXT_ATTR, build_word_network


@pytest.fixture(scope="module")
def ctx():
    return OperatorContext(build_word_network(n_peers=48))


class TestLatencyModel:
    def test_network_time_grows_with_partitions(self):
        model = LatencyModel()
        assert model.network_time_ms(1024, 2) > model.network_time_ms(16, 2)

    def test_compute_time_linear_in_comparisons(self):
        model = LatencyModel(comparison_cost_us=100.0)
        assert model.compute_time_ms(1000) == pytest.approx(100.0)

    def test_estimate_total(self):
        estimate = LatencyEstimate(network_ms=10.0, compute_ms=5.0)
        assert estimate.total_ms == 15.0


class TestEstimateFromDiagnostics:
    def test_naive_dominated_by_local_compute(self, ctx):
        naive = similar(
            ctx, "apple", TEXT_ATTR, 2, strategy=SimilarityStrategy.NAIVE
        )
        model = LatencyModel(hop_latency_ms=1.0, comparison_cost_us=10_000.0)
        estimate = estimate_similar_latency(
            naive, ctx.network.n_partitions, model
        )
        assert estimate.compute_ms > estimate.network_ms

    def test_qgram_faster_than_naive_under_compute_pressure(self, ctx):
        """The paper's remark: naive message counts hide poor response times."""
        model = LatencyModel(comparison_cost_us=500.0)
        naive = estimate_similar_latency(
            similar(ctx, "apple", TEXT_ATTR, 2, strategy=SimilarityStrategy.NAIVE),
            ctx.network.n_partitions,
            model,
        )
        qgram = estimate_similar_latency(
            similar(ctx, "apple", TEXT_ATTR, 2, strategy=SimilarityStrategy.QGRAM),
            ctx.network.n_partitions,
            model,
        )
        assert qgram.compute_ms < naive.compute_ms

    def test_naive_extras_present(self, ctx):
        naive = similar(
            ctx, "apple", TEXT_ATTR, 1, strategy=SimilarityStrategy.NAIVE
        )
        assert naive.extras["region_peers"] > 0
        assert naive.extras["max_peer_comparisons"] > 0
        assert (
            naive.extras["max_peer_comparisons"] <= naive.candidates_verified
        )
