"""The engine's explicit write path and its delta maintenance.

Covers the mutable-store arc end to end: partition-scoped memo
invalidation on insert/delete, in-place statistics patching, the
replica-aware cost model under churn, and the regression the arc fixes —
failing and recovering a peer with **zero net data change** must not
drop a single memo entry (the old wholesale path cleared everything).
"""

import pytest

from repro.core.errors import ConfigError
from repro.core.config import StoreConfig
from repro.engine import QueryEngine
from repro.storage.triple import Triple

from tests.conftest import TEXT_ATTR, word_triples


@pytest.fixture()
def engine():
    return QueryEngine.build(32, word_triples(), StoreConfig(seed=7))


def _memo_entries(engine) -> int:
    return sum(m["entries"] for m in engine.memo_stats().values())


def _warm(engine) -> None:
    """Populate all three memos from a few distinct queries."""
    engine.similar("apple", TEXT_ATTR, 1, strategy="strings")
    engine.similar("apple", TEXT_ATTR, 1)
    engine.similar("banana", TEXT_ATTR, 1)
    engine.similar("cherry", TEXT_ATTR, 1)


class TestWritePath:
    def test_invalid_maintenance_mode_rejected(self):
        with pytest.raises(ConfigError):
            QueryEngine.build(8, memo_maintenance="sometimes")

    def test_insert_returns_entries_and_bumps_version(self, engine):
        before = engine.store_version
        applied = engine.insert([Triple("x:new", TEXT_ATTR, "apricot")])
        assert applied > 0
        assert engine.store_version > before

    def test_delete_inverts_insert(self, engine):
        triple = Triple("x:new", TEXT_ATTR, "apricot")
        inserted = engine.insert([triple])
        removed = engine.delete([triple])
        assert removed == inserted
        result = engine.similar("apricot", TEXT_ATTR, 0)
        assert not result.matches

    def test_delete_of_absent_triple_is_noop(self, engine):
        _warm(engine)
        entries = _memo_entries(engine)
        removed = engine.delete([Triple("x:ghost", TEXT_ATTR, "spectral")])
        assert removed == 0
        assert _memo_entries(engine) == entries

    def test_delta_mode_retains_unaffected_fetch_entries(self, engine):
        _warm(engine)
        before = len(engine.fetch_memo)
        engine.insert([Triple("x:new", TEXT_ATTR, "apricot")])
        assert 0 < len(engine.fetch_memo) < before
        assert engine.fetch_memo.invalidations > 0

    def test_repeat_query_after_write_hits_retained_memos(self, engine):
        _warm(engine)
        engine.insert([Triple("x:new", TEXT_ATTR, "apricot")])
        hits_before = engine.fetch_memo.hits
        engine.similar("banana", TEXT_ATTR, 1)
        engine.similar("cherry", TEXT_ATTR, 1)
        assert engine.fetch_memo.hits > hits_before

    def test_drop_mode_clears_everything(self):
        engine = QueryEngine.build(
            32, word_triples(), StoreConfig(seed=7), memo_maintenance="drop"
        )
        _warm(engine)
        assert _memo_entries(engine) > 0
        engine.insert([Triple("x:new", TEXT_ATTR, "apricot")])
        assert _memo_entries(engine) == 0

    def test_engine_write_does_not_trip_out_of_band_check(self, engine):
        _warm(engine)
        engine.insert([Triple("x:new", TEXT_ATTR, "apricot")])
        retained = _memo_entries(engine)
        assert retained > 0
        # The write already accounted for its own token advance; the
        # out-of-band detector must not re-drop the survivors.
        assert engine.check_mutations() is False
        assert _memo_entries(engine) == retained


class TestStatisticsDelta:
    def test_insert_patches_row_counts(self, engine):
        engine.analyze([TEXT_ATTR])
        stats = engine.catalog.get(TEXT_ATTR)
        rows, string_rows = stats.row_count, stats.string_rows
        gram_rows = stats.gram_rows
        engine.insert([Triple("x:new", TEXT_ATTR, "apricot")])
        assert stats.row_count == rows + 1
        assert stats.string_rows == string_rows + 1
        assert stats.gram_rows == gram_rows + len("apricot") + engine.config.q - 1

    def test_delete_patches_back(self, engine):
        engine.analyze([TEXT_ATTR])
        stats = engine.catalog.get(TEXT_ATTR)
        rows = stats.row_count
        triple = Triple("x:new", TEXT_ATTR, "apricot")
        engine.insert([triple])
        engine.delete([triple])
        assert stats.row_count == rows

    def test_unanalyzed_attribute_untouched(self, engine):
        engine.analyze([TEXT_ATTR])
        engine.insert([Triple("x:new", "other:attr", "value")])
        assert engine.catalog.get("other:attr") is None


class TestChurnRegression:
    def test_zero_net_change_recovery_keeps_all_memos(self, engine):
        """fail + recover with no writes in between drops nothing.

        The old flow (mutation-token check after anti-entropy repair)
        wholesale-dropped every memo after any churn episode; with the
        write path owning churn, a cycle with zero net data change is
        invisible to the memos.
        """
        _warm(engine)
        entries = _memo_entries(engine)
        assert entries > 0
        report = engine.fail_peers([0, 3, 5])
        assert report.failed_peer_ids
        recovery = engine.recover(repair=True)
        assert recovery.recovered_peers == len(report.failed_peer_ids)
        assert not recovery.data_changed
        assert recovery.entries_copied == 0
        assert _memo_entries(engine) == entries
        for memo in (engine.naive_memo, engine.gram_scan_memo, engine.fetch_memo):
            assert memo.invalidations == 0

    def test_divergent_recovery_invalidates_only_repaired_partitions(self):
        engine = QueryEngine.build(
            32, word_triples(), StoreConfig(seed=7, replication=2)
        )
        _warm(engine)
        engine.fail_fraction(0.3, protect_partitions=True)
        # Writes the offline replicas miss: they diverge until repair.
        engine.insert(
            [Triple("x:new", TEXT_ATTR, "apricot")], respect_online=True
        )
        fetch_entries = len(engine.fetch_memo)
        recovery = engine.recover(repair=True)
        assert recovery.data_changed
        assert recovery.entries_copied > 0
        repaired = set(recovery.divergent_partitions)
        for sig in engine.fetch_memo._cache:
            assert sig[0] not in repaired
        assert len(engine.fetch_memo) <= fetch_entries

    def test_queries_correct_after_divergent_recovery(self):
        engine = QueryEngine.build(
            32, word_triples(), StoreConfig(seed=7, replication=2)
        )
        _warm(engine)
        engine.fail_fraction(0.3, protect_partitions=True)
        engine.insert(
            [Triple("x:new", TEXT_ATTR, "apricot")], respect_online=True
        )
        engine.recover(repair=True)
        result = engine.similar("apricot", TEXT_ATTR, 0)
        assert "apricot" in {m.matched for m in result.matches}


class TestReplicaAwareCost:
    def test_healthy_predictions_unchanged_by_churn_cycle(self):
        engine = QueryEngine.build(
            32, word_triples(), StoreConfig(seed=7, replication=2),
        )
        engine.analyze([TEXT_ATTR])
        before = engine.predict_similar("apple", TEXT_ATTR, 1)
        engine.fail_peers([1, 4])
        engine.recover(repair=True)
        after = engine.predict_similar("apple", TEXT_ATTR, 1)
        # Bit-identical floats, not approximately equal: the healthy
        # path must short-circuit the reachability scan entirely.
        for name in before:
            assert before[name].messages == after[name].messages
            assert before[name].latency_ms == after[name].latency_ms

    def test_offline_replicas_shrink_predictions(self):
        engine = QueryEngine.build(
            32, word_triples(), StoreConfig(seed=7, replication=2),
        )
        engine.analyze([TEXT_ATTR])
        healthy = engine.predict_similar("apple", TEXT_ATTR, 1)
        # Darken one partition of the attribute's own key region —
        # random churn may only hit partitions outside it.
        network = engine.network
        prefix = network.codec.attr_prefix(TEXT_ATTR)
        region = network.partitions_under(prefix)
        engine.fail_peers(
            list(region[0].peer_ids), protect_partitions=False
        )
        assert engine.cost_model._reachable_fraction(TEXT_ATTR) < 1.0
        degraded = engine.predict_similar("apple", TEXT_ATTR, 1)
        assert any(
            degraded[name].messages < healthy[name].messages
            for name in healthy
        )
        engine.recover(repair=True)
