"""Shared fixtures: small populated networks and stores."""

from __future__ import annotations

import pytest

from repro.core.config import StoreConfig
from repro.core.store import VerticalStore
from repro.datasets.cars import car_database
from repro.overlay.hashing import CompositeKeyCodec
from repro.overlay.network import PGridNetwork
from repro.query.operators.base import OperatorContext
from repro.storage.indexing import EntryFactory
from repro.storage.triple import Triple

#: A small, edit-distance-rich word collection used across tests.
WORDS = [
    "apple", "apply", "ample", "maple", "apples", "applet", "appl", "aple",
    "grape", "grapes", "grace", "trace", "track", "crack",
    "banana", "band", "bandana", "bananas",
    "cherry", "cherries", "berry", "merry", "ferry", "fern",
    "overlay", "overlap", "overall", "overhaul",
]

TEXT_ATTR = "word:text"
LEN_ATTR = "word:len"


def word_triples() -> list[Triple]:
    """Two-attribute objects for every test word."""
    triples = []
    for index, word in enumerate(WORDS):
        oid = f"w:{index:04d}"
        triples.append(Triple(oid, TEXT_ATTR, word))
        triples.append(Triple(oid, LEN_ATTR, len(word)))
    return triples


def build_word_network(
    n_peers: int = 32, config: StoreConfig | None = None
) -> PGridNetwork:
    """A populated network over the shared word collection."""
    config = config if config is not None else StoreConfig(seed=7)
    codec = CompositeKeyCodec(config)
    factory = EntryFactory(config, codec)
    triples = word_triples()
    sample = [e.key for e in factory.entries_for_all(triples)]
    network = PGridNetwork(n_peers, config, sample_keys=sample)
    network.insert_triples(triples)
    return network


@pytest.fixture(scope="module")
def word_network() -> PGridNetwork:
    return build_word_network()


@pytest.fixture(scope="module")
def word_ctx(word_network) -> OperatorContext:
    return OperatorContext(word_network)


@pytest.fixture(scope="module")
def word_store() -> VerticalStore:
    return VerticalStore.build(32, word_triples(), StoreConfig(seed=7))


@pytest.fixture(scope="module")
def car_store() -> VerticalStore:
    db = car_database(n_cars=80, n_dealers=12, seed=5)
    return VerticalStore.build(48, db.triples, StoreConfig(seed=5))
