#!/usr/bin/env python3
"""Bench-baseline drift check (stdlib only; the CI docs job runs it).

Validates every committed ``benchmarks/BENCH_*.json`` against the
structure its declared ``schema`` tag promises, so a malformed
regenerated baseline fails in the fast docs job instead of surfacing at
bench-tier runtime.  The checks are structural — required keys and
value types — not numerical; regenerating a baseline with different
measurements stays green, dropping or renaming a schema field does not.

Usage::

    python tools/check_bench_schema.py              # benchmarks/BENCH_*.json
    python tools/check_bench_schema.py out/BENCH_serve.json [...]

Exit status 0 when every file validates, 1 otherwise (each problem is
reported on stderr as ``file: message``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

NUMBER = (int, float)


class SchemaProblem(Exception):
    """One validation failure, with a dotted path to the offender."""


def _need(obj: dict, key: str, kinds, where: str):
    if key not in obj:
        raise SchemaProblem(f"{where}: missing key '{key}'")
    value = obj[key]
    if isinstance(value, bool) and bool not in (
        kinds if isinstance(kinds, tuple) else (kinds,)
    ):
        raise SchemaProblem(f"{where}.{key}: expected {kinds}, got bool")
    if not isinstance(value, kinds):
        raise SchemaProblem(
            f"{where}.{key}: expected {kinds}, got {type(value).__name__}"
        )
    return value


def _need_keys(obj: dict, keys, kinds, where: str):
    for key in keys:
        _need(obj, key, kinds, where)


# -- per-schema validators -----------------------------------------------------


def check_fig1_v4(data: dict) -> None:
    scale = _need(data, "scale", dict, "$")
    _need_keys(
        scale,
        ("words", "titles", "repetitions", "seed", "jobs", "fanout"),
        int,
        "scale",
    )
    _need(scale, "full", bool, "scale")
    _need(scale, "adaptive", bool, "scale")
    _need(scale, "naive_sample_rate", NUMBER, "scale")
    peer_counts = _need(scale, "peer_counts", list, "scale")
    if not all(isinstance(n, int) for n in peer_counts):
        raise SchemaProblem("scale.peer_counts: expected a list of ints")
    datasets = _need(data, "datasets", dict, "$")
    if not datasets:
        raise SchemaProblem("datasets: empty")
    for name, dataset in datasets.items():
        where = f"datasets.{name}"
        _need(dataset, "sweep_seconds", NUMBER, where)
        cells = _need(dataset, "cells", list, where)
        if not cells:
            raise SchemaProblem(f"{where}.cells: empty")
        for index, cell in enumerate(cells):
            cell_where = f"{where}.cells[{index}]"
            _need(cell, "peers", int, cell_where)
            _need_keys(
                cell, ("wall_seconds", "build_seconds"), NUMBER, cell_where
            )
            _need_keys(
                cell, ("total_entries", "stored_payload_bytes"), int, cell_where
            )
            strategies = _need(cell, "strategies", dict, cell_where)
            for strategy, series in strategies.items():
                series_where = f"{cell_where}.strategies.{strategy}"
                _need(series, "messages", int, series_where)
                _need(series, "megabytes", NUMBER, series_where)


def check_micro_v2(data: dict) -> None:
    _need_keys(
        _need(data, "params", dict, "$"),
        ("seed", "words", "entries", "probe_keys", "candidates", "distance"),
        int,
        "params",
    )
    ops = _need(data, "ops", dict, "$")
    if not ops:
        raise SchemaProblem("ops: empty")
    for name, op in ops.items():
        where = f"ops.{name}"
        _need_keys(
            op, ("seconds_per_call", "best_seconds_per_call"), NUMBER, where
        )
        _need(op, "calls", int, where)
    cost_model = _need(data, "cost_model", dict, "$")
    _need(cost_model, "per_strategy", dict, "cost_model")
    _need(cost_model, "chosen_within_2x_of_best", NUMBER, "cost_model")
    _need(data, "speedups", dict, "$")


def check_micro_v3(data: dict) -> None:
    """v2 plus the kernel op pairs and the ``kernels`` identity section."""
    check_micro_v2(data)
    ops = data["ops"]
    for name in (
        "verify_batched",
        "verify_batched_myers",
        "edit_distance_banded",
        "edit_distance_myers",
    ):
        _need(ops, name, dict, "ops")
    kernels = _need(data, "kernels", dict, "$")
    _need(kernels, "default", str, "kernels")
    _need(kernels, "batched_pair", dict, "kernels")
    _need(kernels, "numpy_prefilter", bool, "kernels")
    speedups = data["speedups"]
    _need_keys(
        speedups,
        ("verify_myers_vs_batched", "edit_distance_myers_vs_banded"),
        NUMBER,
        "speedups",
    )


def check_fault_v1(data: dict) -> None:
    scale = _need(data, "scale", dict, "$")
    _need_keys(
        scale,
        ("words", "peers", "replication", "queries", "churn_inserts", "seed"),
        int,
        "scale",
    )
    _need(scale, "drop_probability", NUMBER, "scale")
    _need(scale, "fractions", list, "scale")
    cells = _need(data, "cells", list, "$")
    if not cells:
        raise SchemaProblem("cells: empty")
    for index, cell in enumerate(cells):
        where = f"cells[{index}]"
        _need(cell, "fail_fraction", NUMBER, where)
        _need_keys(cell, ("failed_peers", "dark_partitions"), int, where)
        _need_keys(cell, ("under_failure", "repair", "post_repair"), dict, where)
        _need(cell, "consistent_after_repair", bool, where)
    _need(data, "elapsed_seconds", NUMBER, "$")


def check_serve_v1(data: dict) -> None:
    scale = _need(data, "scale", dict, "$")
    _need_keys(scale, ("words", "peers", "seed", "max_inflight"), int, "scale")
    _need_keys(
        scale, ("rate", "duration_seconds", "cost_budget"), NUMBER, "scale"
    )
    transport = _need(scale, "transport", str, "scale")
    if transport not in ("inprocess", "http"):
        raise SchemaProblem(f"scale.transport: unknown value {transport!r}")
    results = _need(data, "results", dict, "$")
    _need_keys(
        results,
        ("offered", "completed", "partial", "rejected", "errors"),
        int,
        "results",
    )
    _need_keys(results, ("elapsed_seconds", "sustained_qps"), NUMBER, "results")
    latency = _need(results, "latency_ms", dict, "results")
    _need_keys(latency, ("p50", "p95", "p99", "mean", "max"), NUMBER,
               "results.latency_ms")
    by_kind = _need(results, "latency_ms_by_kind", dict, "results")
    for kind, summary in by_kind.items():
        where = f"results.latency_ms_by_kind.{kind}"
        _need(summary, "count", int, where)
        _need_keys(summary, ("p50", "p95", "p99"), NUMBER, where)
    timeline = _need(results, "qps_timeline", list, "results")
    if not all(isinstance(v, int) for v in timeline):
        raise SchemaProblem("results.qps_timeline: expected a list of ints")
    per_strategy = _need(results, "per_strategy_cost", dict, "results")
    for strategy, bucket in per_strategy.items():
        where = f"results.per_strategy_cost.{strategy}"
        _need_keys(bucket, ("queries", "messages", "payload_bytes"), int, where)
    admission = _need(results, "admission", dict, "results")
    _need_keys(
        admission,
        ("admitted", "completed", "rejected_capacity", "rejected_overload"),
        int,
        "results.admission",
    )


def check_mutate_v1(data: dict) -> None:
    scale = _need(data, "scale", dict, "$")
    _need_keys(
        scale,
        (
            "words", "peers", "replication", "steps", "queries_per_step",
            "write_batch", "query_pool", "recovery_inserts", "seed",
        ),
        int,
        "scale",
    )
    _need(scale, "recovery_fail_fraction", NUMBER, "scale")
    workload = _need(data, "workload", dict, "$")
    _need_keys(workload, ("ops", "queries", "writes"), int, "workload")
    arms = _need(data, "arms", dict, "$")
    for name in ("delta", "drop", "reference"):
        arm = _need(arms, name, dict, "arms")
        where = f"arms.{name}"
        _need_keys(
            arm,
            ("messages", "payload_bytes", "queries", "memo_hits",
             "memo_misses", "memo_invalidations", "memo_entries_end"),
            int,
            where,
        )
        _need_keys(arm, ("wall_seconds", "memo_hit_rate"), NUMBER, where)
    staleness = _need(data, "staleness", dict, "$")
    _need_keys(
        staleness,
        ("queries_compared", "stale_answers_delta", "stale_answers_drop"),
        int,
        "staleness",
    )
    retention = _need(data, "retention", dict, "$")
    _need_keys(
        retention,
        ("delta_hit_rate", "drop_hit_rate", "advantage"),
        NUMBER,
        "retention",
    )
    recovery = _need(data, "recovery", dict, "$")
    _need_keys(
        recovery,
        ("failed_peers", "recovered_peers", "divergent_partitions",
         "entries_copied", "repair_messages", "repair_payload_bytes",
         "memo_entries_before", "memo_entries_after"),
        int,
        "recovery",
    )
    _need(recovery, "wall_seconds", NUMBER, "recovery")
    _need(data, "elapsed_seconds", NUMBER, "$")


#: Declared schema tag -> validator.  Adding a schema version means
#: adding exactly one entry here (and a benchmarks/README.md section).
VALIDATORS = {
    "repro-bench-fig1/v4": check_fig1_v4,
    "repro-bench-micro/v2": check_micro_v2,
    "repro-bench-micro/v3": check_micro_v3,
    "repro-bench-fault/v1": check_fault_v1,
    "repro-bench-serve/v1": check_serve_v1,
    "repro-bench-mutate/v1": check_mutate_v1,
}


def check_file(path: Path) -> list[str]:
    """All problems of one baseline file, as human-readable strings."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable JSON ({exc})"]
    if not isinstance(data, dict):
        return [f"{path}: top level must be a JSON object"]
    schema = data.get("schema")
    if not isinstance(schema, str):
        return [f"{path}: missing 'schema' tag"]
    validator = VALIDATORS.get(schema)
    if validator is None:
        known = ", ".join(sorted(VALIDATORS))
        return [f"{path}: unknown schema {schema!r} (known: {known})"]
    try:
        validator(data)
    except SchemaProblem as exc:
        return [f"{path}: [{schema}] {exc}"]
    return []


def main(argv: list[str]) -> int:
    if argv:
        paths = [Path(arg) for arg in argv]
    else:
        root = Path(__file__).resolve().parent.parent
        paths = sorted((root / "benchmarks").glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    problems: list[str] = []
    for path in paths:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"bench schemas OK ({len(paths)} files)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
