#!/usr/bin/env python3
"""Lint: ban raw membership-test parsing of environment flags.

``os.environ.get(NAME, "") not in ("", "0", "false")`` looks right and
is silently wrong — ``False``, ``FALSE``, ``no`` and ``off`` all fall
through the tuple and *enable* the flag.  That exact bug once made
``REPRO_FULL_SCALE=False`` launch a paper-scale (100 000-peer) sweep.
The one sanctioned parser is :func:`repro.core.config.env_flag`, which
normalizes with ``.strip().lower()`` and rejects unrecognized values.

This script greps ``src/`` for statements that combine an environment
read (``environ.get`` / ``environ[`` / ``getenv``) with an ``in`` /
``not in`` membership test on the same logical line, and exits non-zero
listing every offender.  ``config.py`` itself is exempt (it implements
the parser).

Run from the repository root::

    python tools/check_env_flags.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Files allowed to read os.environ directly (the sanctioned parser).
EXEMPT = {Path("src/repro/core/config.py")}

ENV_READ = re.compile(r"(?:os\.)?(?:environ\.get|environ\[|getenv)\s*\(?")
MEMBERSHIP = re.compile(r"\b(?:not\s+)?in\b")


def statement_lines(path: Path):
    """Yield (first_lineno, logical_statement) merging continuation lines.

    A paren-balanced accumulator is enough here: flag parsing that
    spreads an ``environ.get(...) not in (...)`` over several physical
    lines still forms one logical statement.
    """
    buffer: list[str] = []
    start = 0
    depth = 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        stripped = line.split("#", 1)[0]
        if not buffer:
            start = lineno
        buffer.append(stripped)
        depth += (
            stripped.count("(") + stripped.count("[") + stripped.count("{")
            - stripped.count(")") - stripped.count("]") - stripped.count("}")
        )
        if depth <= 0:
            yield start, " ".join(buffer)
            buffer = []
            depth = 0
    if buffer:
        yield start, " ".join(buffer)


def check(root: Path) -> list[str]:
    findings: list[str] = []
    for path in sorted((root / "src").rglob("*.py")):
        relative = path.relative_to(root)
        if relative in EXEMPT:
            continue
        for lineno, statement in statement_lines(path):
            match = ENV_READ.search(statement)
            if match is None:
                continue
            if MEMBERSHIP.search(statement, match.end()):
                findings.append(
                    f"{relative}:{lineno}: raw env-flag membership test — "
                    f"use repro.core.config.env_flag() instead"
                )
    return findings


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    findings = check(root)
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(
            f"{len(findings)} raw env-flag parse(s); see "
            f"repro.core.config.env_flag",
            file=sys.stderr,
        )
        return 1
    print("env-flag lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
