"""CI smoke test for the adaptive strategy mode.

Builds a small engine, runs one similarity query in ``ADAPTIVE`` mode,
and asserts the resulting :class:`~repro.overlay.messages.CostReport`
records a complete strategy decision: a concrete chosen strategy plus
its predicted and measured cost.  Exits non-zero on any violation.

Run from the repository root::

    PYTHONPATH=src python tools/adaptive_smoke.py
"""

from __future__ import annotations

import sys


def main() -> int:
    from repro import QueryEngine, StoreConfig, Triple

    words = [
        "adaptive", "adapted", "adopted", "adapter", "chapter",
        "overlay", "overlap", "storage", "strategy", "stratagem",
    ]
    triples = [
        Triple(f"w:{i:04d}", "word:text", word)
        for i, word in enumerate(words)
    ]
    with QueryEngine.build(
        n_peers=32, triples=triples, config=StoreConfig(seed=1),
        strategy="adaptive",
    ) as engine:
        engine.analyze(["word:text"])
        result = engine.query(
            "SELECT ?w WHERE { (?o,word:text,?w) "
            "FILTER (dist(?w,'adaptor') <= 2) }"
        )
    matched = sorted(row["w"] for row in result.rows)
    print(f"rows: {matched}")
    if "adapter" not in matched:
        print("FAIL: expected 'adapter' among the matches", file=sys.stderr)
        return 1
    if not result.cost.decisions:
        print("FAIL: adaptive query recorded no strategy decision",
              file=sys.stderr)
        return 1
    for decision in result.cost.decisions:
        print(f"decision: {decision.summary()}")
        if not decision.chosen.is_physical:
            print("FAIL: chosen strategy is not physical", file=sys.stderr)
            return 1
        if decision.predicted.messages <= 0:
            print("FAIL: missing predicted cost", file=sys.stderr)
            return 1
        if decision.actual_messages is None or decision.actual_messages <= 0:
            print("FAIL: missing measured cost", file=sys.stderr)
            return 1
    print("adaptive smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
