#!/usr/bin/env python3
"""Documentation link checker (stdlib only; the CI docs job runs it).

Scans the repository's markdown documentation for relative links and
verifies every target exists.  External links (``http(s)://``,
``mailto:``) are skipped — CI must not depend on network reachability —
and intra-page anchors (``#...``) are checked only for non-emptiness.

Usage::

    python tools/check_docs.py [repo_root]

Exit status 0 when every link resolves, 1 otherwise (each broken link
is reported on stderr as ``file:line: target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Markdown files whose links are checked, relative to the repo root.
DOC_FILES = (
    "README.md",
    "docs/ARCHITECTURE.md",
    "benchmarks/README.md",
    "ROADMAP.md",
)

#: ``[text](target)`` — good enough for the docs in this repository
#: (no nested brackets, no reference-style links).
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every markdown link in a file."""
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK_PATTERN.finditer(line):
            yield line_number, match.group(1)


def check_file(root: Path, relative: str) -> list[str]:
    """All broken links of one document, as ``file:line: target`` strings."""
    path = root / relative
    if not path.exists():
        return [f"{relative}: file missing"]
    problems = []
    for line_number, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        if not base:
            if not anchor:
                problems.append(f"{relative}:{line_number}: empty link target")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            problems.append(f"{relative}:{line_number}: {target}")
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    problems: list[str] = []
    checked = 0
    for relative in DOC_FILES:
        if not (root / relative).exists():
            problems.append(f"{relative}: file missing")
            continue
        checked += 1
        problems.extend(check_file(root, relative))
    if problems:
        for problem in problems:
            print(f"broken link: {problem}", file=sys.stderr)
        return 1
    print(f"docs ok: {checked} files, all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
